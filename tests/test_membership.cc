/**
 * @file
 * Tests for elastic membership (src/recovery/membership.hh): CM-driven
 * node join, planned drain, and live record migration under load.
 *
 * Every test runs end-to-end through core::runOne with auditing forced
 * on, so a serializability violation or a lost write panics underneath
 * the counter assertions. The divergence predicate (live backups vs
 * ground truth) is the same one the chaos fuzzer fails runs on.
 *
 * Coverage:
 *  - a clean scheduled join + planned drain completes: every record
 *    migrates, the drained node leaves, nothing diverges;
 *  - membership runs are bit-reproducible and bit-identical across
 *    kernel shard counts {1, 2, 4, 8} (the acceptance criterion);
 *  - a node dies mid-drain and mid-join at swept instants: recovery's
 *    view change composes with the aborted membership op, and the
 *    surviving cluster still converges with zero divergent records.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "core/result_hash.hh"
#include "core/runner.hh"

namespace hades
{
namespace
{

using protocol::EngineKind;

const char *
engineTag(EngineKind k)
{
    switch (k) {
      case EngineKind::Baseline:
        return "Baseline";
      case EngineKind::Hades:
        return "Hades";
      default:
        return "HadesH";
    }
}

/** A six-node cluster where node 5 starts as a spare and joins at
 *  30 us while member node 1 drains away starting at 60 us -- both
 *  migrations run under the live workload. */
core::RunSpec
membershipSpec(EngineKind engine,
               workload::AppKind app = workload::AppKind::Smallbank)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.cluster.numNodes = 6;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 2;
    spec.cluster.seed = 42;
    spec.cluster.tuning.retryTimeoutBase = us(4);
    spec.cluster.tuning.retryTimeoutCap = us(32);
    spec.cluster.tuning.maxCommitResends = 6;
    spec.mix = {core::MixEntry{app, kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 6;
    spec.scaleKeys = 4'000;
    spec.replication.degree = 2;
    spec.cluster.recovery.enabled = true;
    spec.cluster.membership.initialMembers = 5;
    spec.cluster.membership.joins.push_back({NodeId(5), us(30)});
    spec.cluster.membership.drains.push_back({NodeId(1), us(60)});
    spec.audit = true;
    return spec;
}

/** Permanently fail-stop @p victim at @p at on top of the join/drain
 *  schedule (the crash-during-migration scenarios). */
void
addCrash(core::RunSpec &spec, NodeId victim, Tick at)
{
    spec.cluster.faults.enabled = true;
    FaultConfig::NodeEvent ev;
    ev.node = victim;
    ev.at = at;
    ev.crash = true;
    ev.forever = true;
    spec.cluster.faults.nodeEvents.push_back(ev);
}

// --- clean join + drain -------------------------------------------------------

class Membership : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(Membership, CleanJoinAndDrainComplete)
{
    auto res = core::runOne(membershipSpec(GetParam()));
    EXPECT_TRUE(res.membershipEnabled);
    EXPECT_TRUE(res.membershipComplete)
        << "a fault-free join + drain schedule must finish";
    EXPECT_EQ(res.joinsCompleted, 1u);
    EXPECT_GT(res.recordsMigrated, 0u);
    EXPECT_GT(res.migrationBatches, 1u)
        << "migration must be throttled into multiple batches, not one "
           "bulk copy";
    EXPECT_GT(res.drainDurationEvents, 0u);
    EXPECT_EQ(res.viewChanges, 0u)
        << "a planned drain is voluntary: no failure detection, no "
           "view change";
    EXPECT_EQ(res.divergentRecords, 0u);
    // The spare contributes no client load before it joins and the
    // drained node stops at drain start, so commits stay strictly
    // below the all-member quota but well above a single node's.
    const std::uint64_t quota = 6u * 2u * 2u * 6u;
    EXPECT_GT(res.stats.committed, quota / 2);
    EXPECT_LT(res.stats.committed, quota);
}

TEST_P(Membership, RunIsBitReproducible)
{
    auto spec = membershipSpec(GetParam());
    auto a = core::runOne(spec);
    auto b = core::runOne(spec);
    EXPECT_EQ(core::hashResult(a), core::hashResult(b))
        << engineTag(GetParam())
        << ": membership run is not bit-reproducible under a fixed "
           "seed";
}

INSTANTIATE_TEST_SUITE_P(AllEngines, Membership,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return std::string(engineTag(info.param));
                         });

// --- shard-count invariance (the acceptance criterion) ------------------------

TEST(Membership, YcsbAJoinDrainIsBitIdenticalAcrossShardCounts)
{
    // The acceptance run: YCSB-A under one join + one drain, audited,
    // replayed on kernel shard counts {1, 2, 4, 8}. Sharding is
    // bit-identical by contract and membership must not break it.
    auto spec = membershipSpec(EngineKind::Hades,
                               workload::AppKind::YcsbA);
    spec.shards = 1;
    auto oracle = core::runOne(spec);
    EXPECT_TRUE(oracle.membershipComplete);
    EXPECT_EQ(oracle.divergentRecords, 0u);
    const auto want = core::hashResult(oracle);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
        auto sharded = spec;
        sharded.shards = shards;
        auto res = core::runOne(sharded);
        // The node-sharded kernel caps lanes at the node count.
        EXPECT_EQ(res.shardsUsed, std::min(shards, 6u));
        EXPECT_EQ(core::hashResult(res), want)
            << "shards=" << shards
            << " diverged from the serial oracle";
    }
}

// --- crash during migration ---------------------------------------------------

TEST(Membership, NodeDiesMidDrainAtSweptInstants)
{
    // Fail-stop the draining node at instants inside its migration
    // window (drain starts at 60 us; its ~800-record footprint takes
    // far longer than 20 us to move at 32 records / 4 us). The drain
    // aborts, recovery's view change re-homes whatever was still
    // homed there, and the survivors converge: zero divergence.
    for (auto engine : {EngineKind::Baseline, EngineKind::Hades,
                        EngineKind::HadesHybrid}) {
        for (Tick at : {us(62), us(70), us(80)}) {
            auto spec = membershipSpec(engine);
            addCrash(spec, 1, at);
            auto res = core::runOne(spec);
            EXPECT_EQ(res.viewChanges, 1u)
                << engineTag(engine) << " crash at " << at;
            EXPECT_FALSE(res.membershipComplete)
                << engineTag(engine) << " crash at " << at
                << ": a drain cut short by a crash must not report "
                   "completion";
            EXPECT_GT(res.promotedRecords, 0u)
                << engineTag(engine) << " crash at " << at
                << ": the dead node still homed records recovery had "
                   "to re-home";
            EXPECT_EQ(res.divergentRecords, 0u)
                << engineTag(engine) << " crash at " << at;
        }
    }
}

TEST(Membership, NodeDiesMidJoinAtSweptInstants)
{
    // Fail-stop the joining node just after admission (first batches
    // of its 1/6 hash share have landed) and mid-rebalance. Recovery
    // re-homes the records that already moved to it; the join reports
    // aborted, never complete.
    for (auto engine : {EngineKind::Baseline, EngineKind::Hades,
                        EngineKind::HadesHybrid}) {
        for (Tick at : {us(32), us(44)}) {
            auto spec = membershipSpec(engine);
            addCrash(spec, 5, at);
            auto res = core::runOne(spec);
            EXPECT_EQ(res.viewChanges, 1u)
                << engineTag(engine) << " crash at " << at;
            EXPECT_FALSE(res.membershipComplete)
                << engineTag(engine) << " crash at " << at;
            EXPECT_EQ(res.divergentRecords, 0u)
                << engineTag(engine) << " crash at " << at;
        }
    }
}

TEST(Membership, CrashDuringMigrationIsBitIdenticalAcrossShardCounts)
{
    // The composed scenario (join + drain + fail-stop of the draining
    // node) must replay bit-identically on every shard count, like
    // every other run in the tree.
    auto spec = membershipSpec(EngineKind::Hades);
    addCrash(spec, 1, us(70));
    spec.shards = 1;
    auto oracle = core::runOne(spec);
    EXPECT_EQ(oracle.viewChanges, 1u);
    EXPECT_EQ(oracle.divergentRecords, 0u);
    const auto want = core::hashResult(oracle);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
        auto sharded = spec;
        sharded.shards = shards;
        auto res = core::runOne(sharded);
        EXPECT_EQ(core::hashResult(res), want)
            << "shards=" << shards
            << " diverged from the serial oracle";
    }
}

} // namespace
} // namespace hades
