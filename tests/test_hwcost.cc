/**
 * @file
 * Tests for the Section VI hardware storage arithmetic against the
 * numbers quoted in the paper.
 */

#include <gtest/gtest.h>

#include "core/hw_cost.hh"

namespace hades::core
{
namespace
{

TEST(HwCost, CoreBfPairIsAboutPointSevenKb)
{
    ClusterConfig cfg;
    auto s = computeHwStorage(cfg, 4);
    // 1024 (read) + 512 + 4096 (split write) bits = 704 bytes.
    EXPECT_NEAR(s.coreBfPairBytes, 0.7 * 1024, 20.0);
}

TEST(HwCost, NicBfPairIsQuarterKb)
{
    ClusterConfig cfg;
    auto s = computeHwStorage(cfg, 4);
    EXPECT_DOUBLE_EQ(s.nicBfPairBytes, 256.0);
}

TEST(HwCost, DefaultClusterMatchesPaper)
{
    // N=5, C=5, m=2, D=4: 10 core pairs (7.0KB), 4 WrTX ID bits,
    // 40 NIC pairs + 10 TX entries (~11KB).
    ClusterConfig cfg;
    auto s = computeHwStorage(cfg, 4);
    EXPECT_EQ(s.corePairs, 10u);
    EXPECT_EQ(s.nicPairs, 40u);
    EXPECT_EQ(s.wrTxIdBits, 4u);
    EXPECT_NEAR(s.coreBfTotalBytes / 1024.0, 7.0, 0.25);
    EXPECT_NEAR(s.nicTotalBytes / 1024.0, 11.0, 0.5);
}

TEST(HwCost, FarmScaleClusterMatchesPaper)
{
    // N=90, C=16, m=2, D=5: 32 pairs (22.4KB), 5 bits, ~43.1KB NIC.
    ClusterConfig cfg;
    cfg.numNodes = 90;
    cfg.coresPerNode = 16;
    auto s = computeHwStorage(cfg, 5);
    EXPECT_EQ(s.corePairs, 32u);
    EXPECT_EQ(s.nicPairs, 160u);
    EXPECT_EQ(s.wrTxIdBits, 5u);
    EXPECT_NEAR(s.coreBfTotalBytes / 1024.0, 22.4, 0.5);
    EXPECT_NEAR(s.nicTotalBytes / 1024.0, 43.1, 1.0);
}

TEST(HwCost, StorageScalesLinearlyWithContexts)
{
    ClusterConfig a, b;
    b.coresPerNode = 2 * a.coresPerNode;
    auto sa = computeHwStorage(a, 4);
    auto sb = computeHwStorage(b, 4);
    EXPECT_DOUBLE_EQ(sb.coreBfTotalBytes, 2 * sa.coreBfTotalBytes);
    EXPECT_EQ(sb.nicPairs, 2 * sa.nicPairs);
}

TEST(HwCost, WrTxIdBitsAreLogOfContexts)
{
    ClusterConfig cfg;
    cfg.coresPerNode = 25;
    cfg.slotsPerCore = 2; // 50 contexts
    auto s = computeHwStorage(cfg, 4);
    EXPECT_EQ(s.wrTxIdBits, 6u); // log2(50) rounded up
}

TEST(HwCost, NicFitsInCommodityNicMemory)
{
    // Section VI: an NVIDIA NIC has up to 4MB of on-NIC memory; even
    // the FaRM-scale configuration uses ~1% of that.
    ClusterConfig cfg;
    cfg.numNodes = 90;
    cfg.coresPerNode = 16;
    auto s = computeHwStorage(cfg, 5);
    EXPECT_LT(s.nicTotalBytes, 4.0 * 1024 * 1024 * 0.02);
}

} // namespace
} // namespace hades::core
