/**
 * @file
 * Tests for grey-failure and overload robustness (PR: fail-slow fault
 * model, latency-SLO hedging, admission control with retry budgets):
 *
 *  - unit coverage of the fixed-point SLO tracker (warmup, Q8 EWMA
 *    classification thresholds, transition counters, the sustained-
 *    degraded quarantine trigger) and the admission controller (lazy
 *    token refill, depth-bound shedding, retry-budget ratio, the
 *    deterministic backoff ladders);
 *  - fail-slow injection end-to-end: slow-NIC / slow-link / straggler
 *    windows perturb the run (greyDelays / stragglerReserves), runs
 *    stay bit-reproducible and bit-identical across kernel shard
 *    counts {1, 2, 4, 8};
 *  - hedged remote reads engage against a sustained-slow home node
 *    (hedgedSends / hedgeWins) without breaking the audit;
 *  - admission control sheds under a tight bucket yet never loses
 *    work, and an exhausted retry budget paces retries
 *    (retryBudgetDeferrals) while every context still finishes;
 *  - the retry-timeout ladder (doubling base..cap) is deterministic
 *    across double-runs and shard counts under heavy drops;
 *  - the chaos composition: grey fault -> sustained degraded -> CM
 *    quarantine (live drain) -> crash-forever -> view-change recovery
 *    converges with zero divergent records, audited.
 *
 * Every end-to-end scenario runs through core::runOne with auditing
 * forced on and is double-run under a fixed seed: fingerprints must
 * match bit-for-bit (DESIGN.md section 8).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/result_hash.hh"
#include "core/runner.hh"
#include "net/slo_tracker.hh"
#include "protocol/admission.hh"
#include "sim/kernel.hh"

namespace hades
{
namespace
{

using net::PeerHealth;
using protocol::EngineKind;

const char *
engineTag(EngineKind k)
{
    switch (k) {
      case EngineKind::Baseline:
        return "Baseline";
      case EngineKind::Hades:
        return "Hades";
      default:
        return "HadesH";
    }
}

constexpr EngineKind kAllEngines[] = {
    EngineKind::Baseline,
    EngineKind::HadesHybrid,
    EngineKind::Hades,
};

// ---- SLO tracker units ------------------------------------------------------

SloConfig
trackerConfig()
{
    SloConfig cfg;
    cfg.enabled = true;
    cfg.ewmaShift = 1; // fast EWMA so tests converge in few samples
    cfg.warmupSamples = 4;
    cfg.suspectPct = 250;
    cfg.degradedPct = 500;
    cfg.sustainedSamples = 3;
    return cfg;
}

TEST(SloTracker_, WarmupHoldsClassificationHealthy)
{
    net::SloTracker t(trackerConfig(), 4, us(2));
    // Three grossly slow samples, but warmup is 4: still Healthy.
    for (int i = 0; i < 3; ++i)
        t.observe(0, 1, us(40));
    EXPECT_EQ(t.classify(0, 1), PeerHealth::Healthy);
    EXPECT_EQ(t.stats().suspectTransitions, 0u);
    t.observe(0, 1, us(40));
    EXPECT_EQ(t.classify(0, 1), PeerHealth::Degraded)
        << "past warmup a 20x EWMA must classify Degraded";
}

TEST(SloTracker_, ThresholdsAndTransitionCountersTrack)
{
    net::SloTracker t(trackerConfig(), 4, us(2));
    for (int i = 0; i < 8; ++i)
        t.observe(0, 1, us(2)); // healthy baseline
    EXPECT_EQ(t.classify(0, 1), PeerHealth::Healthy);
    // Degrade: EWMA (alpha 1/2) walks 2 -> 11 -> 15.5 -> ... toward 20.
    t.observe(0, 1, us(20));
    EXPECT_EQ(t.classify(0, 1), PeerHealth::Degraded)
        << "11us EWMA vs 2us healthy = 550% >= degradedPct";
    EXPECT_EQ(t.stats().degradedTransitions, 1u);
    // Recover: EWMA halves toward 2us; first step lands Suspect-range.
    t.observe(0, 1, us(2));
    EXPECT_EQ(t.classify(0, 1), PeerHealth::Suspect);
    EXPECT_EQ(t.stats().suspectTransitions, 1u);
    for (int i = 0; i < 6; ++i)
        t.observe(0, 1, us(2));
    EXPECT_EQ(t.classify(0, 1), PeerHealth::Healthy);
    // Re-degrading counts a second transition.
    for (int i = 0; i < 6; ++i)
        t.observe(0, 1, us(20));
    EXPECT_EQ(t.stats().degradedTransitions, 2u);
}

TEST(SloTracker_, SustainedDegradedPicksTheLowestVictim)
{
    auto cfg = trackerConfig();
    net::SloTracker t(cfg, 4, us(2));
    NodeId victim = 99;
    EXPECT_FALSE(t.sustainedDegraded(victim));
    // Peer 2 goes degraded-and-stays for sustainedSamples (3) streaks
    // past warmup; peer 1 flaps Suspect-and-back (2us/12us alternation
    // keeps its EWMA oscillating 4.5..8.6us, under the 10us degraded
    // line) and never sustains. Observer 0's verdict alone must NOT
    // indict peer 2 -- a fail-slow observer sees everyone as degraded,
    // so the tracker demands a second independent witness.
    for (int i = 0; i < 4 + 3; ++i) {
        t.observe(0, 2, us(30));
        t.observe(0, 1, i % 2 ? us(12) : us(2));
    }
    EXPECT_FALSE(t.sustainedDegraded(victim));
    for (int i = 0; i < 4 + 3; ++i)
        t.observe(3, 2, us(30)); // second witness corroborates
    ASSERT_TRUE(t.sustainedDegraded(victim));
    EXPECT_EQ(victim, NodeId(2));
}

TEST(SloTracker_, SelfAndOutOfRangeObservationsAreIgnored)
{
    net::SloTracker t(trackerConfig(), 3, us(2));
    t.observe(1, 1, us(50));
    t.observe(7, 1, us(50));
    t.observe(1, 7, us(50));
    EXPECT_EQ(t.stats().samples, 0u);
    EXPECT_EQ(t.classify(1, 1), PeerHealth::Healthy);
}

// ---- Admission controller units ---------------------------------------------

AdmissionConfig
tightAdmission()
{
    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.bucketCap = 4;
    cfg.refillTokens = 2;
    cfg.refillInterval = us(2);
    cfg.maxInFlight = 0;
    return cfg;
}

TEST(Admission_, TokenBucketShedsWhenDryAndRefillsLazily)
{
    sim::Kernel k;
    protocol::AdmissionController adm(tightAdmission(), k, 2);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(adm.admit(0)) << "bucket starts full";
    EXPECT_FALSE(adm.admit(0)) << "empty bucket must shed";
    EXPECT_EQ(adm.stats().admittedTxns, 4u);
    EXPECT_EQ(adm.stats().shedTxns, 1u);
    // Advance simulated time two refill intervals: 4 tokens back.
    bool checked = false;
    k.scheduleAt(us(4), [&] {
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(adm.admit(0)) << "lazy refill missed";
        EXPECT_FALSE(adm.admit(0));
        checked = true;
    });
    k.run();
    EXPECT_TRUE(checked);
    // Per-node isolation: node 1's bucket was never touched.
    EXPECT_TRUE(adm.admit(1));
}

TEST(Admission_, DepthBoundShedsIndependentlyOfTokens)
{
    auto cfg = tightAdmission();
    cfg.maxInFlight = 2;
    sim::Kernel k;
    protocol::AdmissionController adm(cfg, k, 1);
    EXPECT_TRUE(adm.admit(0));
    adm.begin(0);
    EXPECT_TRUE(adm.admit(0));
    adm.begin(0);
    EXPECT_FALSE(adm.admit(0)) << "depth 2 >= maxInFlight must shed";
    adm.end(0);
    EXPECT_TRUE(adm.admit(0)) << "freed depth re-admits";
}

TEST(Admission_, RetryBudgetIsARatioOfAdmissions)
{
    auto cfg = tightAdmission();
    cfg.retryBudgetPct = 50;
    sim::Kernel k;
    protocol::AdmissionController adm(cfg, k, 1);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(adm.admit(0));
    // Budget = 4 admitted * 50% = 2 retries.
    ASSERT_TRUE(adm.retryAllowed(0));
    adm.noteRetry(0);
    ASSERT_TRUE(adm.retryAllowed(0));
    adm.noteRetry(0);
    EXPECT_FALSE(adm.retryAllowed(0)) << "third retry exceeds budget";
    EXPECT_EQ(adm.stats().retriesGranted, 2u);
}

TEST(Admission_, BackoffLaddersAreDeterministicAndCapped)
{
    auto cfg = tightAdmission();
    cfg.shedBackoffBase = us(4);
    cfg.shedBackoffCapShift = 3;
    cfg.retryPaceBase = us(2);
    sim::Kernel k;
    protocol::AdmissionController adm(cfg, k, 1);
    EXPECT_EQ(adm.shedBackoff(0), us(4));
    EXPECT_EQ(adm.shedBackoff(1), us(8));
    EXPECT_EQ(adm.shedBackoff(3), us(32));
    EXPECT_EQ(adm.shedBackoff(50), us(32)) << "ladder must cap";
    EXPECT_EQ(adm.retryPace(0), us(2));
    EXPECT_EQ(adm.retryPace(9), us(16)) << "pace caps at 8x base";
}

// ---- End-to-end specs -------------------------------------------------------

/** Five-node YCSB-A cluster under audit; the grey-failure scenarios
 *  decorate this. */
core::RunSpec
baseSpec(EngineKind engine)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.cluster.numNodes = 5;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 2;
    spec.cluster.seed = 42;
    spec.cluster.tuning.retryTimeoutBase = us(4);
    spec.cluster.tuning.retryTimeoutCap = us(32);
    spec.cluster.tuning.maxCommitResends = 6;
    spec.mix = {core::MixEntry{workload::AppKind::YcsbA,
                               kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 6;
    spec.scaleKeys = 4'000;
    spec.audit = true;
    return spec;
}

std::uint64_t
expectedCommits(const core::RunSpec &spec)
{
    return std::uint64_t(spec.cluster.numNodes) *
           spec.cluster.coresPerNode * spec.cluster.slotsPerCore *
           spec.txnsPerContext;
}

void
addSlowNic(core::RunSpec &spec, NodeId node, std::uint32_t factor_pct,
           Tick at, Tick until)
{
    FaultConfig::GreyEvent g;
    g.kind = FaultConfig::GreyEvent::Kind::SlowNic;
    g.node = node;
    g.factorPct = factor_pct;
    g.at = at;
    g.until = until;
    spec.cluster.faults.enabled = true;
    spec.cluster.faults.greyEvents.push_back(g);
}

/** Sustained-slow node 1 with the SLO tracker + hedging armed and a
 *  replica to hedge to. */
core::RunSpec
greySloSpec(EngineKind engine, std::uint32_t factor_pct = 600)
{
    core::RunSpec spec = baseSpec(engine);
    addSlowNic(spec, NodeId(1), factor_pct, us(2), us(4000));
    spec.cluster.slo.enabled = true;
    spec.replication.degree = 2;
    return spec;
}

// ---- Fail-slow injection ----------------------------------------------------

TEST(GreyFault_, SlowNicPerturbsDeterministically)
{
    for (EngineKind e : kAllEngines) {
        core::RunSpec spec = baseSpec(e);
        addSlowNic(spec, NodeId(1), 400, us(2), us(2000));
        auto a = core::runOne(spec);
        auto b = core::runOne(spec);
        EXPECT_EQ(core::hashResult(a), core::hashResult(b))
            << engineTag(e) << ": grey runs must be bit-reproducible";
        EXPECT_GT(a.greyDelays, 0u)
            << engineTag(e) << ": the slow NIC never engaged";
        EXPECT_EQ(a.stats.committed, expectedCommits(spec))
            << engineTag(e);
        EXPECT_TRUE(a.audited);
    }
}

TEST(GreyFault_, SlowLinkOnlySlowsTheNamedEdge)
{
    core::RunSpec spec = baseSpec(EngineKind::Hades);
    FaultConfig::GreyEvent g;
    g.kind = FaultConfig::GreyEvent::Kind::SlowLink;
    g.node = NodeId(0);
    g.dst = NodeId(1);
    g.factorPct = 500;
    g.at = us(2);
    g.until = us(2000);
    spec.cluster.faults.enabled = true;
    spec.cluster.faults.greyEvents.push_back(g);
    auto r = core::runOne(spec);
    EXPECT_GT(r.greyDelays, 0u);
    EXPECT_EQ(r.stats.committed, expectedCommits(spec));

    // The directed edge slows strictly fewer copies than a symmetric
    // one over the same window.
    core::RunSpec sym = spec;
    sym.cluster.faults.greyEvents[0].symmetric = true;
    auto rs = core::runOne(sym);
    EXPECT_GT(rs.greyDelays, r.greyDelays);
}

TEST(GreyFault_, StraggleCoreStealsDutyCycles)
{
    core::RunSpec spec = baseSpec(EngineKind::Hades);
    FaultConfig::GreyEvent g;
    g.kind = FaultConfig::GreyEvent::Kind::StraggleCore;
    g.node = NodeId(2);
    g.factorPct = 300;
    g.at = us(5);
    g.until = us(60);
    spec.cluster.faults.enabled = true;
    spec.cluster.faults.greyEvents.push_back(g);
    auto a = core::runOne(spec);
    auto b = core::runOne(spec);
    EXPECT_EQ(core::hashResult(a), core::hashResult(b));
    EXPECT_GT(a.stragglerReserves, 0u);
    EXPECT_EQ(a.greyDelays, 0u)
        << "a straggler core must not slow the wire";
    EXPECT_EQ(a.stats.committed, expectedCommits(spec));
}

TEST(GreyFault_, BitIdenticalAcrossShardCounts)
{
    core::RunSpec spec = greySloSpec(EngineKind::Hades);
    spec.shards = 1;
    const auto oracle = core::hashResult(core::runOne(spec));
    for (std::uint32_t shards : {2u, 4u, 8u}) {
        core::RunSpec s = spec;
        s.shards = shards;
        EXPECT_EQ(core::hashResult(core::runOne(s)), oracle)
            << shards << " shards diverged from the serial oracle";
    }
}

// ---- SLO + hedging ----------------------------------------------------------

TEST(Slo_, SustainedSlowNodeTripsTheTrackerAndHedges)
{
    for (EngineKind e : kAllEngines) {
        auto r = core::runOne(greySloSpec(e));
        EXPECT_GT(r.sloSamples, 0u) << engineTag(e);
        EXPECT_GT(r.sloSuspectTransitions + r.sloDegradedTransitions,
                  0u)
            << engineTag(e) << ": a 6x-slow node never left Healthy";
        EXPECT_GT(r.hedgedSends, 0u)
            << engineTag(e) << ": hedging never engaged";
        EXPECT_EQ(r.stats.committed,
                  expectedCommits(greySloSpec(e)))
            << engineTag(e);
        EXPECT_TRUE(r.audited) << engineTag(e);
    }
}

TEST(Slo_, HedgesWinAgainstASlowHome)
{
    auto r = core::runOne(greySloSpec(EngineKind::Hades));
    EXPECT_GT(r.hedgeWins, 0u)
        << "with a 6x-slow home every raced hedge should beat it";
    EXPECT_LE(r.hedgeWins, r.hedgedSends);
}

TEST(Slo_, NoHedgeKnobKeepsTheTrackerObservational)
{
    core::RunSpec spec = greySloSpec(EngineKind::Hades);
    spec.cluster.slo.hedgeReads = false;
    auto r = core::runOne(spec);
    EXPECT_GT(r.sloSamples, 0u);
    EXPECT_EQ(r.hedgedSends, 0u);
    EXPECT_EQ(r.hedgeWins, 0u);
    EXPECT_EQ(r.stats.committed, expectedCommits(spec));
}

TEST(Slo_, HedgingIsBitReproducible)
{
    const core::RunSpec spec = greySloSpec(EngineKind::HadesHybrid);
    auto a = core::runOne(spec);
    auto b = core::runOne(spec);
    EXPECT_EQ(core::hashResult(a), core::hashResult(b));
}

TEST(Slo_, DisabledSubsystemsStayInert)
{
    // Faults on, grey/SLO/admission off: every new counter is zero.
    core::RunSpec spec = baseSpec(EngineKind::Hades);
    spec.cluster.faults.enabled = true;
    spec.cluster.faults.dropAll(0.02);
    auto r = core::runOne(spec);
    EXPECT_EQ(r.greyDelays, 0u);
    EXPECT_EQ(r.stragglerReserves, 0u);
    EXPECT_EQ(r.sloSamples, 0u);
    EXPECT_EQ(r.hedgedSends, 0u);
    EXPECT_EQ(r.admittedTxns, 0u);
    EXPECT_EQ(r.shedTxns, 0u);
    EXPECT_EQ(r.quarantines, 0u);
}

// ---- Admission control end-to-end -------------------------------------------

TEST(Admission_, TightBucketShedsButNeverLosesWork)
{
    for (EngineKind e : kAllEngines) {
        core::RunSpec spec = baseSpec(e);
        spec.cluster.faults.enabled = true; // serial executor path
        spec.cluster.admission.enabled = true;
        spec.cluster.admission.bucketCap = 2;
        spec.cluster.admission.refillTokens = 1;
        spec.cluster.admission.refillInterval = us(4);
        spec.cluster.admission.maxInFlight = 3;
        auto a = core::runOne(spec);
        auto b = core::runOne(spec);
        EXPECT_EQ(core::hashResult(a), core::hashResult(b))
            << engineTag(e);
        EXPECT_GT(a.shedTxns, 0u)
            << engineTag(e) << ": the tight bucket never shed";
        EXPECT_EQ(a.stats.committed, expectedCommits(spec))
            << engineTag(e) << ": shedding must delay, never lose";
        EXPECT_EQ(a.admittedTxns, expectedCommits(spec))
            << engineTag(e) << ": every txn is admitted exactly once";
        EXPECT_GT(a.stats.squashes[std::size_t(
                      txn::SquashReason::Shed)],
                  0u)
            << engineTag(e);
    }
}

TEST(Admission_, ExhaustedRetryBudgetPacesInsteadOfFailing)
{
    // Zero retry budget: every squash retry must wait through the
    // pacing ladder (retryBudgetDeferrals) yet still proceed.
    core::RunSpec spec = baseSpec(EngineKind::Baseline);
    spec.cluster.faults.enabled = true;
    spec.cluster.admission.enabled = true;
    spec.cluster.admission.retryBudgetPct = 0;
    spec.cluster.admission.maxRetryDeferrals = 2;
    spec.scaleKeys = 60; // contended: plenty of squash retries
    auto r = core::runOne(spec);
    EXPECT_GT(r.retryBudgetDeferrals, 0u)
        << "no squash ever hit the exhausted budget";
    EXPECT_EQ(r.stats.committed, expectedCommits(spec))
        << "pacing must never strand a transaction";
}

// ---- Retry-timeout ladder determinism ---------------------------------------

TEST(Retry_, TimeoutLadderIsDeterministicAcrossRunsAndShards)
{
    // Heavy drops so the commit-phase RTO ladder (base..cap doubling)
    // actually drives resends; the ladder must replay bit-identically
    // and shard-count-invariantly.
    core::RunSpec spec = baseSpec(EngineKind::Hades);
    spec.cluster.faults.enabled = true;
    spec.cluster.faults.dropAll(0.15);
    spec.cluster.faults.seed = 7;
    auto a = core::runOne(spec);
    auto b = core::runOne(spec);
    ASSERT_GT(a.timeoutResends, 0u)
        << "the drop rate never exercised the RTO ladder";
    EXPECT_EQ(core::hashResult(a), core::hashResult(b));
    for (std::uint32_t shards : {2u, 4u}) {
        core::RunSpec s = spec;
        s.shards = shards;
        EXPECT_EQ(core::hashResult(core::runOne(s)),
                  core::hashResult(a))
            << shards << " shards diverged on the RTO ladder";
    }
}

// ---- Quarantine composition -------------------------------------------------

/** Quarantine scenario: node 1 is sustained-slow; the CM must drain it
 *  live through the membership path. */
core::RunSpec
quarantineSpec(EngineKind engine)
{
    // 10x, not 6x: every observation of the victim must classify
    // Degraded outright (6x EWMAs flap around the 500% line as hedge
    // wins mix in fast samples), so the consecutive-degraded streak
    // survives to the sustained threshold and the CM acts.
    core::RunSpec spec = greySloSpec(engine, 1000);
    spec.cluster.slo.quarantine = true;
    // Each (observer, victim) pair only collects a few dozen samples
    // in a short run, so the default 8-warmup + 12-streak thresholds
    // starve; shrink both so the CM can act inside the grey window.
    spec.cluster.slo.warmupSamples = 4;
    spec.cluster.slo.sustainedSamples = 4;
    spec.cluster.recovery.enabled = true;
    spec.txnsPerContext = 8;
    return spec;
}

TEST(Quarantine_, SustainedDegradedNodeIsDrainedLive)
{
    auto spec = quarantineSpec(EngineKind::Hades);
    auto a = core::runOne(spec);
    auto b = core::runOne(spec);
    EXPECT_EQ(core::hashResult(a), core::hashResult(b));
    EXPECT_EQ(a.quarantines, 1u)
        << "the sustained-degraded node was never quarantined";
    EXPECT_GT(a.recordsMigrated, 0u)
        << "quarantine must migrate the victim's records live";
    EXPECT_EQ(a.divergentRecords, 0u);
    // The victim's unissued contexts stop when it leaves the ring
    // (same contract as a planned drain, test_membership.cc), so the
    // cluster lands strictly between half and full quota.
    EXPECT_GT(a.stats.committed, expectedCommits(spec) / 2);
    EXPECT_LT(a.stats.committed, expectedCommits(spec));
    EXPECT_TRUE(a.audited);
}

TEST(Quarantine_, ComposesWithCrashRecovery)
{
    // The full chaos composition: grey fault -> quarantine drain ->
    // the victim then dies for real -> recovery's view change cleans
    // up whatever the drain had not moved yet. The run must converge
    // with zero divergent records under audit, for every engine.
    for (EngineKind e : kAllEngines) {
        auto spec = quarantineSpec(e);
        FaultConfig::NodeEvent ev;
        ev.node = NodeId(1);
        ev.at = us(120);
        ev.crash = true;
        ev.forever = true;
        spec.cluster.faults.nodeEvents.push_back(ev);
        auto a = core::runOne(spec);
        auto b = core::runOne(spec);
        EXPECT_EQ(core::hashResult(a), core::hashResult(b))
            << engineTag(e);
        EXPECT_EQ(a.divergentRecords, 0u)
            << engineTag(e)
            << ": quarantine + crash recovery left divergence";
        EXPECT_GT(a.stats.committed, 0u) << engineTag(e);
        EXPECT_TRUE(a.audited) << engineTag(e);
    }
}

TEST(Quarantine_, HealthyClusterNeverQuarantines)
{
    core::RunSpec spec = baseSpec(EngineKind::Hades);
    spec.cluster.faults.enabled = true;
    spec.cluster.slo.enabled = true;
    spec.cluster.slo.quarantine = true;
    spec.cluster.recovery.enabled = true;
    spec.replication.degree = 2;
    auto r = core::runOne(spec);
    EXPECT_EQ(r.quarantines, 0u)
        << "no grey fault, no quarantine: the trigger must be quiet";
    EXPECT_EQ(r.divergentRecords, 0u);
    EXPECT_EQ(r.stats.committed, expectedCommits(spec));
}

} // namespace
} // namespace hades
