/**
 * @file
 * Tests for the parallel sweep runner (core::runMany).
 *
 *  - validateSpec() rejects each malformed field.
 *  - A bad spec in the middle of a batch fails in place without
 *    disturbing its neighbours.
 *  - Results are ordered by spec index and identical for any job
 *    count (this file is also the TSan lane's data-race probe).
 *  - On machines with enough hardware threads, a 16-spec sweep on 8
 *    workers must be substantially faster than one worker.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/sweep.hh"

namespace
{

using namespace hades;

core::RunSpec
tinySpec(std::uint64_t seed)
{
    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Hades;
    spec.mix = {core::MixEntry{workload::AppKind::YcsbA,
                               kvs::StoreKind::HashTable}};
    spec.cluster.numNodes = 3;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 2;
    spec.cluster.seed = seed;
    spec.txnsPerContext = 8;
    spec.scaleKeys = 4000;
    return spec;
}

TEST(Sweep, ValidateSpecRejectsMalformedSpecs)
{
    EXPECT_TRUE(core::validateSpec(tinySpec(1)).empty());

    auto no_mix = tinySpec(1);
    no_mix.mix.clear();
    EXPECT_FALSE(core::validateSpec(no_mix).empty());

    auto one_node = tinySpec(1);
    one_node.cluster.numNodes = 1;
    EXPECT_FALSE(core::validateSpec(one_node).empty());

    auto no_cores = tinySpec(1);
    no_cores.cluster.coresPerNode = 0;
    EXPECT_FALSE(core::validateSpec(no_cores).empty());

    auto no_slots = tinySpec(1);
    no_slots.cluster.slotsPerCore = 0;
    EXPECT_FALSE(core::validateSpec(no_slots).empty());

    auto over_replicated = tinySpec(1);
    over_replicated.replication.degree = 3; // == numNodes
    EXPECT_FALSE(core::validateSpec(over_replicated).empty());
}

TEST(Sweep, BadSpecFailsInPlaceWithoutDisturbingNeighbours)
{
    std::vector<core::RunSpec> specs{tinySpec(1), tinySpec(2),
                                     tinySpec(3)};
    specs[1].mix.clear();

    const auto serial0 = core::runOne(specs[0]);
    const auto serial2 = core::runOne(specs[2]);

    core::SweepOptions opts;
    opts.jobs = 2;
    const auto out = core::runMany(specs, opts);
    ASSERT_EQ(out.size(), 3u);

    EXPECT_TRUE(out[0].ok);
    EXPECT_FALSE(out[1].ok);
    EXPECT_FALSE(out[1].error.empty());
    EXPECT_TRUE(out[2].ok);

    EXPECT_EQ(out[0].result.stats.committed, serial0.stats.committed);
    EXPECT_EQ(out[0].result.simTime, serial0.simTime);
    EXPECT_EQ(out[2].result.stats.committed, serial2.stats.committed);
    EXPECT_EQ(out[2].result.simTime, serial2.simTime);
}

TEST(Sweep, ResultsAreOrderedAndJobCountInvariant)
{
    std::vector<core::RunSpec> specs;
    for (std::uint64_t s = 0; s < 16; ++s)
        specs.push_back(tinySpec(s));

    core::SweepOptions serial_opts;
    serial_opts.jobs = 1;
    const auto serial = core::runMany(specs, serial_opts);

    core::SweepOptions parallel_opts;
    parallel_opts.jobs = 8;
    const auto parallel = core::runMany(specs, parallel_opts);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        EXPECT_EQ(serial[i].index, i);
        EXPECT_EQ(parallel[i].index, i);
        EXPECT_EQ(parallel[i].result.stats.committed,
                  serial[i].result.stats.committed);
        EXPECT_EQ(parallel[i].result.simTime, serial[i].result.simTime);
        EXPECT_EQ(parallel[i].result.stats.netMessages,
                  serial[i].result.stats.netMessages);
        EXPECT_EQ(parallel[i].result.throughputTps,
                  serial[i].result.throughputTps);
    }
}

TEST(Sweep, ShardDimensionIsResultInvariantAcrossTheMatrix)
{
    // The sweep matrix gained an executor dimension (RunSpec::shards):
    // the same model spec at shards {1, 2, 4} must produce one result,
    // regardless of how many sweep workers carry the runs. Kernel
    // worker threads (inside a run) compose with sweep worker threads
    // (across runs) here, which also makes this the TSan lane's probe
    // for the combination.
    std::vector<core::RunSpec> specs;
    for (std::uint64_t s = 0; s < 4; ++s)
        for (std::uint32_t shards : {1u, 2u, 4u}) {
            auto spec = tinySpec(s);
            spec.shards = shards;
            specs.push_back(spec);
        }

    core::SweepOptions opts;
    opts.jobs = 4;
    const auto out = core::runMany(specs, opts);
    ASSERT_EQ(out.size(), specs.size());
    for (std::size_t base = 0; base < out.size(); base += 3) {
        ASSERT_TRUE(out[base].ok) << out[base].error;
        EXPECT_EQ(out[base].result.shardsUsed, 1u);
        for (std::size_t j = 1; j < 3; ++j) {
            const auto &ref = out[base].result;
            ASSERT_TRUE(out[base + j].ok) << out[base + j].error;
            const auto &res = out[base + j].result;
            EXPECT_EQ(res.simTime, ref.simTime);
            EXPECT_EQ(res.stats.committed, ref.stats.committed);
            EXPECT_EQ(res.stats.netMessages, ref.stats.netMessages);
            EXPECT_EQ(res.throughputTps, ref.throughputTps);
            EXPECT_EQ(res.shardsUsed,
                      std::min(specs[base + j].shards, 3u));
        }
    }
}

TEST(Sweep, JobsZeroMeansAllHardwareThreads)
{
    std::vector<core::RunSpec> specs{tinySpec(7), tinySpec(8)};
    core::SweepOptions opts;
    opts.jobs = 0;
    const auto out = core::runMany(specs, opts);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].ok);
    EXPECT_TRUE(out[1].ok);
}

#if defined(__SANITIZER_ACTIVE__) || defined(__SANITIZE_ADDRESS__) ||  \
    defined(__SANITIZE_THREAD__)
#define HADES_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HADES_UNDER_SANITIZER 1
#endif
#endif
#ifndef HADES_UNDER_SANITIZER
#define HADES_UNDER_SANITIZER 0
#endif

// Timing assertions belong in tests, not src/: the determinism lint
// bans wall-clock use only inside the simulator itself.
TEST(Sweep, ParallelSweepIsFasterWhenCoresExist)
{
    if (std::thread::hardware_concurrency() < 8 || HADES_UNDER_SANITIZER)
        GTEST_SKIP() << "needs >= 8 hardware threads and no sanitizer "
                        "for a meaningful timing comparison";

    std::vector<core::RunSpec> specs;
    for (std::uint64_t s = 0; s < 16; ++s) {
        auto spec = tinySpec(100 + s);
        spec.txnsPerContext = 60; // long enough to dwarf thread setup
        spec.scaleKeys = 20'000;
        specs.push_back(spec);
    }

    using Clock = std::chrono::steady_clock;
    core::SweepOptions one;
    one.jobs = 1;
    const auto t0 = Clock::now();
    (void)core::runMany(specs, one);
    const auto serial_s = std::chrono::duration<double>(Clock::now() - t0)
                              .count();

    core::SweepOptions eight;
    eight.jobs = 8;
    const auto t1 = Clock::now();
    (void)core::runMany(specs, eight);
    const auto parallel_s =
        std::chrono::duration<double>(Clock::now() - t1).count();

    // The acceptance target is >= 3x on an unloaded 8-core machine;
    // assert a loose 2x so CI noise cannot flake the suite.
    EXPECT_GE(serial_s / parallel_s, 2.0)
        << "serial " << serial_s << "s vs parallel " << parallel_s
        << "s";
}

} // namespace
