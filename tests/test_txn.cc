/**
 * @file
 * Tests for the transaction substrate: record layout arithmetic
 * (Figure 1), version/lock tables, programs, and statistics types.
 */

#include <gtest/gtest.h>

#include "txn/ground_truth.hh"
#include "txn/program.hh"
#include "txn/record.hh"
#include "txn/txn_stats.hh"
#include "txn/version_table.hh"

namespace hades::txn
{
namespace
{

TEST(RecordLayout, PayloadLines)
{
    EXPECT_EQ(RecordLayout{1}.payloadLines(), 1u);
    EXPECT_EQ(RecordLayout{64}.payloadLines(), 1u);
    EXPECT_EQ(RecordLayout{65}.payloadLines(), 2u);
    EXPECT_EQ(RecordLayout{256}.payloadLines(), 4u);
}

TEST(RecordLayout, HwBytesAreBarePayload)
{
    RecordLayout l{256};
    EXPECT_EQ(l.hwBytes(), 256u);
    EXPECT_EQ(RecordLayout{100}.hwBytes(), 128u); // 2 lines
}

TEST(RecordLayout, SwBytesIncludeFigure1Metadata)
{
    RecordLayout l{256}; // 4 payload lines
    // Header (24B) + 4 per-line versions (32B) = 56B -> 1 meta line.
    EXPECT_EQ(l.metaBytes(), 24u + 4 * 8u);
    EXPECT_EQ(l.metaLines(), 1u);
    EXPECT_EQ(l.swLines(), 5u);
    EXPECT_EQ(l.swBytes(), 5u * 64u);
    EXPECT_EQ(l.swPayloadOffset(), 64u);
}

TEST(RecordLayout, LargeRecordNeedsMoreMetaLines)
{
    RecordLayout l{1024}; // 16 payload lines
    // 24 + 16*8 = 152B -> 3 meta lines.
    EXPECT_EQ(l.metaLines(), 3u);
    EXPECT_EQ(l.swLines(), 19u);
}

TEST(RecordLayout, SwAlwaysBiggerThanHw)
{
    for (std::uint32_t payload : {8u, 64u, 100u, 256u, 512u, 4096u}) {
        RecordLayout l{payload};
        EXPECT_GT(l.swBytes(), l.hwBytes()) << payload;
    }
}

TEST(VersionTable, LockSemantics)
{
    VersionTable t;
    EXPECT_TRUE(t.tryLock(1, 100));
    EXPECT_FALSE(t.tryLock(1, 200)) << "held lock must not be stolen";
    EXPECT_TRUE(t.tryLock(1, 100)) << "re-entrant for the same owner";
    t.unlock(1, 200); // wrong owner: no-op
    EXPECT_EQ(t.peek(1).lockOwner, 100u);
    t.unlock(1, 100);
    EXPECT_EQ(t.peek(1).lockOwner, 0u);
    EXPECT_TRUE(t.tryLock(1, 200));
}

TEST(VersionTable, VersionsBumpIndependently)
{
    VersionTable t;
    t.bumpVersion(5);
    t.bumpVersion(5);
    t.bumpVersion(6);
    EXPECT_EQ(t.peek(5).version, 2u);
    EXPECT_EQ(t.peek(6).version, 1u);
    EXPECT_EQ(t.peek(7).version, 0u);
}

TEST(GroundTruth, ReadWriteAndSum)
{
    GroundTruth g;
    EXPECT_EQ(g.read(0), 0);
    g.write(0, 10);
    g.write(1, -4);
    g.write(2, 6);
    EXPECT_EQ(g.read(0), 10);
    EXPECT_EQ(g.sumRange(0, 2), 12);
    EXPECT_EQ(g.touched(), 3u);
}

TEST(TxnProgram, CountsReadsAndWrites)
{
    TxnProgram p;
    Request r;
    p.requests.push_back(r);
    r.isWrite = true;
    p.requests.push_back(r);
    p.requests.push_back(r);
    EXPECT_EQ(p.numReads(), 1u);
    EXPECT_EQ(p.numWrites(), 2u);
}

TEST(EngineStats, SquashAccounting)
{
    EngineStats s;
    s.addSquash(SquashReason::EagerLocalConflict);
    s.addSquash(SquashReason::LazyConflict);
    s.addSquash(SquashReason::LazyConflict);
    EXPECT_EQ(s.totalSquashes(), 3u);
    EXPECT_EQ(s.squashes[std::size_t(SquashReason::LazyConflict)], 2u);
}

TEST(EngineStats, OverheadAccounting)
{
    EngineStats s;
    s.addOverhead(Overhead::ManageSets, 100);
    s.addOverhead(Overhead::ManageSets, 50);
    s.addOverhead(Overhead::ReadAtomicity, 7);
    EXPECT_EQ(s.overhead(Overhead::ManageSets), 150);
    EXPECT_EQ(s.overhead(Overhead::ReadAtomicity), 7);
    EXPECT_EQ(s.overhead(Overhead::RdBeforeWr), 0);
}

TEST(EngineStats, MergeCombinesEverything)
{
    EngineStats a, b;
    a.committed = 10;
    a.attempts = 12;
    a.latency.add(100);
    a.maxLinesRead = 30;
    a.bfConflictChecks = 1000;
    a.bfFalsePositives = 1;
    b.committed = 5;
    b.attempts = 9;
    b.latency.add(300);
    b.maxLinesRead = 76;
    b.addSquash(SquashReason::LockFailure);
    a.merge(b);
    EXPECT_EQ(a.committed, 15u);
    EXPECT_EQ(a.attempts, 21u);
    EXPECT_EQ(a.latency.count(), 2u);
    EXPECT_EQ(a.maxLinesRead, 76u);
    EXPECT_EQ(a.totalSquashes(), 1u);
    EXPECT_EQ(a.bfConflictChecks, 1000u);
}

TEST(Names, OverheadAndSquash)
{
    EXPECT_STREQ(overheadName(Overhead::RdBeforeWr), "RdBeforeWr");
    EXPECT_STREQ(overheadName(Overhead::ConflictDetection),
                 "ConflictDetection");
    EXPECT_STREQ(squashReasonName(SquashReason::LlcEviction),
                 "LlcEviction");
    EXPECT_STREQ(squashReasonName(SquashReason::EagerLocalConflict),
                 "EagerLocalConflict");
}

} // namespace
} // namespace hades::txn
