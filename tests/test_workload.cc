/**
 * @file
 * Tests for the workload generators: mixes, request counts, locality
 * shaping, and the characteristics the paper quotes (TPC-C has many
 * small requests, TATP is read-heavy with few requests, Smallbank is
 * ~46% writes).
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"
#include "workload/workloads.hh"

namespace hades::workload
{
namespace
{

WorkloadConfig
cfg()
{
    WorkloadConfig c;
    c.numNodes = 5;
    c.scaleKeys = 50'000;
    return c;
}

struct MixStats
{
    double writeFraction = 0;
    double dataReqsPerTxn = 0;
    double allReqsPerTxn = 0;
    double indexReqsPerTxn = 0;
};

MixStats
sample(WorkloadGenerator &gen, int txns = 4000)
{
    Rng rng{99};
    std::uint64_t writes = 0, data = 0, total = 0, index = 0;
    for (int i = 0; i < txns; ++i) {
        auto prog = gen.next(rng, NodeId(i % 5));
        for (const auto &r : prog.requests) {
            ++total;
            if (r.isIndex) {
                ++index;
                continue;
            }
            ++data;
            writes += r.isWrite ? 1 : 0;
        }
    }
    MixStats s;
    s.writeFraction = double(writes) / double(data);
    s.dataReqsPerTxn = double(data) / txns;
    s.allReqsPerTxn = double(total) / txns;
    s.indexReqsPerTxn = double(index) / txns;
    return s;
}

std::unique_ptr<WorkloadGenerator>
bound(AppKind app, kvs::StoreKind store, const WorkloadConfig &c,
      mem::Placement &placement)
{
    auto gen = makeWorkload(app, store, c);
    placement = mem::Placement{c.numNodes, gen->numRecords(), 256};
    gen->bind(placement, 0);
    return gen;
}

TEST(Ycsb, WorkloadAIsHalfWrites)
{
    auto c = cfg();
    mem::Placement p{1, 1, 64};
    auto gen = bound(AppKind::YcsbA, kvs::StoreKind::HashTable, c, p);
    auto s = sample(*gen);
    EXPECT_NEAR(s.writeFraction, 0.50, 0.03);
    EXPECT_DOUBLE_EQ(s.dataReqsPerTxn, 5.0); // 5 client requests
    EXPECT_GT(s.indexReqsPerTxn, 0.5);       // hash bucket reads
}

TEST(Ycsb, WorkloadBIsReadHeavy)
{
    auto c = cfg();
    mem::Placement p{1, 1, 64};
    auto gen = bound(AppKind::YcsbB, kvs::StoreKind::HashTable, c, p);
    auto s = sample(*gen);
    EXPECT_NEAR(s.writeFraction, 0.05, 0.02);
}

TEST(Ycsb, LabelIncludesStore)
{
    auto c = cfg();
    auto gen = makeWorkload(AppKind::YcsbA, kvs::StoreKind::BTree, c);
    EXPECT_EQ(gen->label(), "BTree-wA");
}

TEST(Ycsb, ZipfSkewsTowardsHotKeys)
{
    auto c = cfg();
    mem::Placement p{1, 1, 64};
    auto gen = bound(AppKind::YcsbA, kvs::StoreKind::HashTable, c, p);
    Rng rng{5};
    std::uint64_t hot = 0, total = 0;
    for (int i = 0; i < 3000; ++i) {
        auto prog = gen->next(rng, 0);
        for (const auto &r : prog.requests) {
            if (r.isIndex)
                continue;
            ++total;
            hot += (r.record < 100) ? 1 : 0; // top-100 of 50k keys
        }
    }
    EXPECT_GT(double(hot) / double(total), 0.15);
}

TEST(Tpcc, ManySmallFineGrainedRequests)
{
    auto c = cfg();
    mem::Placement p{1, 1, 64};
    auto gen = bound(AppKind::Tpcc, kvs::StoreKind::HashTable, c, p);
    auto s = sample(*gen);
    // Paper: ~13.5 requests per transaction, write-intensive.
    EXPECT_GT(s.allReqsPerTxn, 8.0);
    EXPECT_LT(s.allReqsPerTxn, 20.0);
    EXPECT_GT(s.writeFraction, 0.25);

    // Requests are fine-grained (well below a whole record).
    Rng rng{1};
    auto prog = gen->next(rng, 0);
    for (const auto &r : prog.requests) {
        EXPECT_GT(r.sizeBytes, 0u);
        EXPECT_LE(r.sizeBytes, 64u);
    }
}

TEST(Tatp, ReadHeavyFewRequests)
{
    auto c = cfg();
    mem::Placement p{1, 1, 64};
    auto gen = bound(AppKind::Tatp, kvs::StoreKind::HashTable, c, p);
    auto s = sample(*gen);
    // Paper: 80% reads / 20% writes, small transactions.
    EXPECT_NEAR(s.writeFraction, 0.20, 0.08);
    EXPECT_LT(s.allReqsPerTxn, 3.0);
}

TEST(Smallbank, WriteIntensive)
{
    auto c = cfg();
    mem::Placement p{1, 1, 64};
    auto gen =
        bound(AppKind::Smallbank, kvs::StoreKind::HashTable, c, p);
    auto s = sample(*gen);
    // Paper: 46% write requests.
    EXPECT_NEAR(s.writeFraction, 0.46, 0.10);
}

TEST(Smallbank, TransfersAreDerivedWrites)
{
    auto c = cfg();
    mem::Placement p{1, 1, 64};
    auto gen =
        bound(AppKind::Smallbank, kvs::StoreKind::HashTable, c, p);
    Rng rng{3};
    bool saw_derived = false;
    for (int i = 0; i < 200 && !saw_derived; ++i) {
        auto prog = gen->next(rng, 0);
        for (const auto &r : prog.requests)
            saw_derived |= r.isWrite && r.derivedFromReadIdx >= 0;
    }
    EXPECT_TRUE(saw_derived);
}

TEST(Ycsb, WorkloadEIssuesScans)
{
    auto c = cfg();
    mem::Placement p{1, 1, 64};
    auto gen = bound(AppKind::YcsbE, kvs::StoreKind::BPlusTree, c, p);
    EXPECT_EQ(gen->label(), "B+Tree-wE");
    auto s = sample(*gen, 1500);
    // Scans multiply the data requests per transaction well past the
    // 5 client requests of workloads A/B.
    EXPECT_GT(s.dataReqsPerTxn, 10.0);
    EXPECT_GT(s.indexReqsPerTxn, 4.0);
    EXPECT_LT(s.writeFraction, 0.10);
}

TEST(Locality, ForcedLocalFractionShapesHomes)
{
    auto c = cfg();
    c.forcedLocalFraction = 0.8;
    auto gen = makeWorkload(AppKind::YcsbA, kvs::StoreKind::HashTable,
                            c);
    mem::Placement p{c.numNodes, gen->numRecords(), 256};
    gen->bind(p, 0);

    Rng rng{7};
    std::uint64_t local = 0, total = 0;
    const NodeId me = 2;
    for (int i = 0; i < 2000; ++i) {
        auto prog = gen->next(rng, me);
        for (const auto &r : prog.requests) {
            if (r.isIndex)
                continue;
            ++total;
            local += p.homeOf(r.record) == me ? 1 : 0;
        }
    }
    EXPECT_NEAR(double(local) / double(total), 0.8, 0.05);
}

TEST(Locality, DefaultIsUniform)
{
    auto c = cfg(); // forcedLocalFraction < 0
    auto gen = makeWorkload(AppKind::YcsbA, kvs::StoreKind::HashTable,
                            c);
    mem::Placement p{c.numNodes, gen->numRecords(), 256};
    gen->bind(p, 0);
    Rng rng{8};
    std::uint64_t local = 0, total = 0;
    // Rotate the coordinator: a single node's view is biased by where
    // the zipf-hot keys happen to be homed.
    for (int i = 0; i < 5000; ++i) {
        NodeId me = NodeId(i % 5);
        auto prog = gen->next(rng, me);
        for (const auto &r : prog.requests) {
            if (r.isIndex)
                continue;
            ++total;
            local += p.homeOf(r.record) == me ? 1 : 0;
        }
    }
    // ~1/N = 20% at N=5.
    EXPECT_NEAR(double(local) / double(total), 0.20, 0.05);
}

TEST(RecordBase, OffsetsApplied)
{
    auto c = cfg();
    auto gen = makeWorkload(AppKind::Smallbank,
                            kvs::StoreKind::HashTable, c);
    mem::Placement p{c.numNodes, gen->numRecords() + 777, 256};
    gen->bind(p, 777);
    Rng rng{9};
    auto prog = gen->next(rng, 0);
    for (const auto &r : prog.requests)
        EXPECT_GE(r.record, 777u);
}

TEST(AppKindName, Labels)
{
    EXPECT_STREQ(appKindName(AppKind::Tpcc), "TPCC");
    EXPECT_STREQ(appKindName(AppKind::YcsbA), "wA");
    EXPECT_STREQ(appKindName(AppKind::YcsbReadOnly), "100%RD");
}

} // namespace
} // namespace hades::workload
