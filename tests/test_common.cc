/**
 * @file
 * Unit tests for the common substrate: types, time, RNG, Zipf, hashing,
 * and statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/config.hh"
#include "common/hash.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/time.hh"
#include "common/types.hh"

namespace hades
{
namespace
{

TEST(Types, GlobalTxIdPackIsUniqueAcrossContexts)
{
    std::map<std::uint64_t, GlobalTxId> seen;
    for (NodeId n = 0; n < 8; ++n) {
        for (CoreId c = 0; c < 25; ++c) {
            for (SlotId s = 0; s < 2; ++s) {
                GlobalTxId id{n, c, s};
                auto [it, inserted] = seen.emplace(id.pack(), id);
                EXPECT_TRUE(inserted)
                    << "pack collision between contexts";
                (void)it;
            }
        }
    }
}

TEST(Types, AddrRangeLineArithmetic)
{
    // A 1-byte access within one line.
    AddrRange r1{100, 1};
    EXPECT_EQ(r1.firstLine(), 64u);
    EXPECT_EQ(r1.lastLine(), 64u);
    EXPECT_EQ(r1.numLines(), 1u);

    // Exactly one aligned line.
    AddrRange r2{128, 64};
    EXPECT_EQ(r2.firstLine(), 128u);
    EXPECT_EQ(r2.lastLine(), 128u);
    EXPECT_EQ(r2.numLines(), 1u);

    // Unaligned spanning two lines.
    AddrRange r3{120, 16};
    EXPECT_EQ(r3.firstLine(), 64u);
    EXPECT_EQ(r3.lastLine(), 128u);
    EXPECT_EQ(r3.numLines(), 2u);

    // A 256-byte record aligned at 0 spans 4 lines.
    AddrRange r4{0, 256};
    EXPECT_EQ(r4.numLines(), 4u);

    // Empty range.
    AddrRange r5{64, 0};
    EXPECT_EQ(r5.numLines(), 0u);
}

TEST(Time, ClockConversions)
{
    Clock clk{2.0}; // 2 GHz
    EXPECT_EQ(clk.period(), 500);
    EXPECT_EQ(clk.cycles(40), 20'000);      // 40 cycles = 20 ns
    EXPECT_EQ(clk.toCycles(us(2)), 4000);   // 2 us = 4000 cycles
    EXPECT_EQ(ns(100), 100'000);
    EXPECT_EQ(us(2), 2'000'000);
}

TEST(Rng, DeterministicForFixedSeed)
{
    Rng a{123}, b{123};
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.below(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, UniformCoversUnitInterval)
{
    Rng rng{99};
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 100000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Zipf, HeadIsHotterThanTail)
{
    Rng rng{1};
    ZipfGenerator zipf{4'000'000, 0.99};
    std::uint64_t head = 0, tail = 0;
    constexpr int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i) {
        auto v = zipf.sample(rng);
        ASSERT_LT(v, 4'000'000u);
        if (v < 1000)
            ++head;
        if (v >= 2'000'000)
            ++tail;
    }
    // With theta=0.99 the first thousand items absorb a large fraction of
    // the mass while the entire top half of the key space gets little.
    EXPECT_GT(head, std::uint64_t(kSamples) / 4);
    EXPECT_LT(tail, std::uint64_t(kSamples) / 10);
}

TEST(Zipf, UniformishWhenThetaSmall)
{
    Rng rng{2};
    ZipfGenerator zipf{1000, 0.01};
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        counts[zipf.sample(rng) / 100] += 1;
    // Every decile should receive a nontrivial share.
    for (int c : counts)
        EXPECT_GT(c, 3000);
}

TEST(Hash, Crc64IsStableAndSeedSensitive)
{
    auto h1 = Crc64::hash(0xdeadbeef);
    auto h2 = Crc64::hash(0xdeadbeef);
    auto h3 = Crc64::hash(0xdeadbeef, 1);
    auto h4 = Crc64::hash(0xdeadbef0);
    EXPECT_EQ(h1, h2);
    EXPECT_NE(h1, h3);
    EXPECT_NE(h1, h4);
}

TEST(Hash, Mix64Bijective)
{
    // Distinct inputs should (overwhelmingly) produce distinct outputs;
    // mix64 is in fact a bijection, so collisions indicate a typo.
    std::map<std::uint64_t, std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        auto m = mix64(i * 0x9e3779b97f4a7c15ULL);
        EXPECT_TRUE(seen.emplace(m, i).second);
    }
}

TEST(Stats, AccumulatorBasics)
{
    stats::Accumulator acc;
    EXPECT_EQ(acc.mean(), 0.0);
    acc.add(2);
    acc.add(4);
    acc.add(6);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
    EXPECT_EQ(acc.count(), 3u);

    stats::Accumulator other;
    other.add(10);
    acc.merge(other);
    EXPECT_EQ(acc.count(), 4u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.5);
    EXPECT_DOUBLE_EQ(acc.max(), 10.0);
}

TEST(Stats, HistogramQuantiles)
{
    stats::Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 1000u);
    // Log-linear buckets bound relative error by 1/32.
    EXPECT_NEAR(double(h.p50()), 500.0, 500.0 / 16.0);
    EXPECT_NEAR(double(h.p95()), 950.0, 950.0 / 16.0);
    EXPECT_NEAR(double(h.p99()), 990.0, 990.0 / 16.0);
    EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(Stats, HistogramMergePreservesCountsAndMean)
{
    stats::Histogram a, b;
    for (int i = 0; i < 100; ++i)
        a.add(10);
    for (int i = 0; i < 100; ++i)
        b.add(30);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_NEAR(double(a.p95()), 30.0, 2.0);
}

TEST(Stats, HistogramLargeValues)
{
    stats::Histogram h;
    h.add(0);
    h.add(std::uint64_t{1} << 40);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_GE(h.quantile(0.99), std::uint64_t{1} << 39);
}

TEST(Config, TableIIIDefaults)
{
    ClusterConfig cfg;
    EXPECT_EQ(cfg.numNodes, 5u);
    EXPECT_EQ(cfg.coresPerNode, 5u);
    EXPECT_EQ(cfg.slotsPerCore, 2u);
    EXPECT_EQ(cfg.netRoundTrip, us(2));
    EXPECT_EQ(cfg.dramLatency, ns(100));
    EXPECT_EQ(cfg.l1.accessCycles, 2u);
    EXPECT_EQ(cfg.l2.accessCycles, 12u);
    EXPECT_EQ(cfg.llcCycles, 40u);
    EXPECT_EQ(cfg.coreReadBf.bits, 1024u);
    EXPECT_EQ(cfg.coreWriteBf.bf1Bits, 512u);
    EXPECT_EQ(cfg.coreWriteBf.bf2Bits, 4096u);
    EXPECT_EQ(cfg.nicReadBf.bits, 1024u);
    EXPECT_EQ(cfg.nicWriteBf.bits, 1024u);
    EXPECT_EQ(cfg.totalCores(), 25u);
    // 4MB/core * 5 cores, 16-way, 64B lines -> 20480 sets.
    EXPECT_EQ(cfg.llcSets(), 20480u);
    EXPECT_FALSE(cfg.hasForcedLocality());
}

} // namespace
} // namespace hades
