/**
 * @file
 * Robustness tests for the partition/corruption fault model and the
 * configuration-manager replica group (PR: partition tolerance,
 * cascading failures, CM failover):
 *
 *  - link-level partition windows: directed vs symmetric blocking,
 *    scheduled healing, partitionDrops/partitionHeals counters, and
 *    full recovery of the workload once the window closes;
 *  - payload corruption: NIC CRC rejection is indistinguishable from
 *    loss at the protocol layer and the retry machinery absorbs it;
 *  - CM failover: a crashed primary CM is deterministically succeeded
 *    by the next live slot, which then runs the dead node's view
 *    change; cascading crashes produce one view change each;
 *  - split-brain rule: a minority-partitioned CM refuses to advance
 *    the epoch until the partition heals;
 *  - recovery-during-recovery: a second crash_forever at any instant
 *    around an in-flight view change still converges with zero
 *    divergent replicas;
 *  - regression: duplicated confirm-Acks crossing an epoch fence stay
 *    idempotent (reliablePost dup+fence interaction);
 *  - RobustnessTuning knobs actually steer the retry machinery.
 *
 * Every scenario is double-run under a fixed seed: the fingerprints
 * must match bit-for-bit at any instant sweep, per the determinism
 * contract (DESIGN.md section 8).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/runner.hh"
#include "net/network.hh"

namespace hades
{
namespace
{

using protocol::EngineKind;

const char *
engineTag(EngineKind k)
{
    switch (k) {
      case EngineKind::Baseline:
        return "Baseline";
      case EngineKind::Hades:
        return "Hades";
      default:
        return "HadesH";
    }
}

/** Small replicated cluster with fast fault-recovery tuning. */
core::RunSpec
baseSpec(EngineKind engine)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.cluster.numNodes = 5;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 2;
    spec.cluster.seed = 42;
    spec.cluster.tuning.retryTimeoutBase = us(4);
    spec.cluster.tuning.retryTimeoutCap = us(32);
    spec.cluster.tuning.maxCommitResends = 6;
    spec.mix = {core::MixEntry{workload::AppKind::Smallbank,
                               kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 8;
    spec.scaleKeys = 4'000;
    spec.cluster.faults.enabled = true;
    return spec;
}

/** baseSpec plus replication + recovery (crash scenarios). */
core::RunSpec
recoverySpec(EngineKind engine)
{
    auto spec = baseSpec(engine);
    spec.replication.degree = 2;
    spec.cluster.recovery.enabled = true;
    return spec;
}

void
addCrash(core::RunSpec &spec, NodeId victim, Tick at)
{
    FaultConfig::NodeEvent ev;
    ev.node = victim;
    ev.at = at;
    ev.crash = true;
    ev.forever = true;
    spec.cluster.faults.nodeEvents.push_back(ev);
}

constexpr std::uint64_t kContexts = 5 * 2 * 2;
constexpr std::uint64_t kFullQuota = kContexts * 8;

/** The counters that must be bit-identical across double runs. */
struct Fingerprint
{
    Tick simTime = 0;
    std::uint64_t committed = 0, attempts = 0, netMessages = 0,
                  netBytes = 0, partitionDrops = 0, corruptDrops = 0,
                  viewChanges = 0, cmFailovers = 0, quorumRefusals = 0,
                  staleLeaseGrants = 0, fenced = 0, divergent = 0;

    bool operator==(const Fingerprint &) const = default;
};

Fingerprint
fingerprint(const core::RunResult &res)
{
    return Fingerprint{res.simTime,
                       res.stats.committed,
                       res.stats.attempts,
                       res.stats.netMessages,
                       res.stats.netBytes,
                       res.partitionDrops,
                       res.corruptDrops,
                       res.viewChanges,
                       res.cmFailovers,
                       res.quorumRefusals,
                       res.staleLeaseGrants,
                       res.fencedStaleMessages,
                       res.divergentRecords};
}

// --- PartitionWindow semantics (pure unit checks) -----------------------------

TEST(PartitionModel, DirectedWindowBlocksOnlyThatEdgeInsideTheWindow)
{
    FaultConfig::PartitionWindow w;
    w.edges.emplace_back(1, 3);
    w.at = us(10);
    w.until = us(20);
    EXPECT_TRUE(w.blocks(1, 3, us(10)));
    EXPECT_TRUE(w.blocks(1, 3, us(19)));
    EXPECT_FALSE(w.blocks(1, 3, us(9))) << "window not yet open";
    EXPECT_FALSE(w.blocks(1, 3, us(20))) << "healed at `until`";
    EXPECT_FALSE(w.blocks(3, 1, us(15)))
        << "asymmetric by default: reverse direction must still work";
    EXPECT_FALSE(w.blocks(1, 2, us(15)));

    w.symmetric = true;
    EXPECT_TRUE(w.blocks(3, 1, us(15)))
        << "symmetric window must block the reverse edge too";
}

TEST(PartitionModel, IsolateCutsEveryEdgeBothWays)
{
    auto w = FaultConfig::PartitionWindow::isolate(2, 5, us(5), us(15));
    for (NodeId n = 0; n < 5; ++n) {
        if (n == 2)
            continue;
        EXPECT_TRUE(w.blocks(2, n, us(10)));
        EXPECT_TRUE(w.blocks(n, 2, us(10)));
    }
    EXPECT_FALSE(w.blocks(0, 1, us(10)))
        << "edges between other nodes must stay up";
}

TEST(PartitionModel, HealAccountingIsLazyAndCountsOnlyPassedDeadlines)
{
    FaultConfig f;
    f.partitions.push_back(
        FaultConfig::PartitionWindow::isolate(1, 5, us(5), us(15)));
    f.partitions.push_back(
        FaultConfig::PartitionWindow::isolate(2, 5, us(5), kTickMax));
    EXPECT_EQ(f.partitionsHealedBy(us(10)), 0u);
    EXPECT_EQ(f.partitionsHealedBy(us(15)), 1u);
    EXPECT_EQ(f.partitionsHealedBy(kTickMax - 1), 1u)
        << "a never-healing window must not count as healed";
    EXPECT_TRUE(f.linkBlocked(1, 0, us(6)));
    EXPECT_FALSE(f.linkBlocked(1, 0, us(16)));
}

// --- partitions end-to-end ----------------------------------------------------

class Partitions : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(Partitions, WorkloadSurvivesAnIsolationWindowThatHeals)
{
    // Isolate node 3 for 20us mid-run. Sends across the cut are
    // dropped and counted; the RC retransmission and protocol resend
    // machinery recovers everything after the heal, so the full quota
    // still commits and the auditor stays green.
    auto spec = baseSpec(GetParam());
    spec.cluster.faults.partitions.push_back(
        FaultConfig::PartitionWindow::isolate(3, 5, us(10), us(30)));
    auto res = core::runOne(spec);
    EXPECT_GT(res.partitionDrops, 0u)
        << "the window never dropped anything; it is not being hit";
    EXPECT_EQ(res.partitionHeals, 1u);
    EXPECT_EQ(res.stats.committed, kFullQuota)
        << "a healed partition must not cost any transaction";
    EXPECT_EQ(res.faultDrops, res.partitionDrops)
        << "partition drops must fold into the faultDrops total";
}

TEST_P(Partitions, PartitionRunIsBitReproducible)
{
    auto spec = baseSpec(GetParam());
    spec.cluster.faults.partitions.push_back(
        FaultConfig::PartitionWindow::isolate(3, 5, us(10), us(30)));
    auto a = fingerprint(core::runOne(spec));
    auto b = fingerprint(core::runOne(spec));
    EXPECT_TRUE(a == b) << "partitioned run is not bit-reproducible";
}

INSTANTIATE_TEST_SUITE_P(AllEngines, Partitions,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return std::string(engineTag(info.param));
                         });

// --- corruption end-to-end ----------------------------------------------------

class Corruption : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(Corruption, CrcRejectedCopiesBehaveLikeLossAndAreRecovered)
{
    auto spec = baseSpec(GetParam());
    spec.cluster.faults.corruptAll(0.05);
    auto res = core::runOne(spec);
    EXPECT_GT(res.corruptDrops, 0u)
        << "corruption probability never corrupted anything";
    EXPECT_EQ(res.stats.committed, kFullQuota)
        << "CRC-rejected copies must be retried like drops, not lost";
    auto again = fingerprint(core::runOne(spec));
    EXPECT_TRUE(fingerprint(res) == again)
        << "corrupting run is not bit-reproducible";
}

TEST_P(Corruption, CommitPhaseVerbsSurviveTargetedCorruption)
{
    // Corrupt exactly the verbs the engine's commit path depends on
    // (Intend-to-commit/Validation for the HADES engines, the RDMA
    // lock/write verbs for the Baseline): at the protocol layer the
    // CRC rejection must be indistinguishable from a drop, so the
    // resend paths -- not any corruption-specific handling -- recover.
    auto spec = baseSpec(GetParam());
    auto &corrupt = spec.cluster.faults.corruptProb;
    if (GetParam() == EngineKind::Baseline) {
        corrupt[std::size_t(net::MsgType::RdmaCas)] = 0.2;
        corrupt[std::size_t(net::MsgType::RdmaWrite)] = 0.2;
    } else {
        corrupt[std::size_t(net::MsgType::IntendToCommit)] = 0.2;
        corrupt[std::size_t(net::MsgType::Validation)] = 0.2;
    }
    auto res = core::runOne(spec);
    EXPECT_GT(res.corruptDrops, 0u);
    EXPECT_EQ(res.stats.committed, kFullQuota);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, Corruption,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return std::string(engineTag(info.param));
                         });

// --- CM failover --------------------------------------------------------------

class CmFailover : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(CmFailover, CrashedPrimaryCmIsSucceededAndFailedOver)
{
    // Node 0 is the initial acting primary of the CM group {0,1,2}.
    // Killing it forces the standby succession: exactly one CM
    // failover, then the successor runs the ordinary view change for
    // node 0's records. Nothing may stay divergent afterwards.
    auto spec = recoverySpec(GetParam());
    addCrash(spec, 0, us(25));
    auto res = core::runOne(spec);
    EXPECT_EQ(res.cmFailovers, 1u)
        << "the standby never succeeded the dead primary";
    EXPECT_EQ(res.viewChanges, 1u);
    EXPECT_GT(res.promotedRecords, 0u);
    EXPECT_EQ(res.divergentRecords, 0u);
}

TEST_P(CmFailover, CascadingCrashYieldsOneViewChangeEach)
{
    // First the CM primary dies (failover), then a data node dies
    // mid-recovery: the successor must declare both in node order, and
    // the final state must hold every committed value on every live
    // backup.
    auto spec = recoverySpec(GetParam());
    addCrash(spec, 0, us(20));
    addCrash(spec, 3, us(40));
    auto res = core::runOne(spec);
    EXPECT_EQ(res.cmFailovers, 1u);
    EXPECT_EQ(res.viewChanges, 2u)
        << "each permanent crash must get exactly one view change";
    EXPECT_EQ(res.divergentRecords, 0u);
}

TEST_P(CmFailover, PrimaryCrashWithProbesOutstandingIsReproducible)
{
    // Lease probes are kept in flight (loss-lengthened round trips)
    // when the primary dies, so grants race the failover; the CM-epoch
    // stamp on each grant decides staleness deterministically. The
    // scenario must converge identically on every run.
    auto spec = recoverySpec(GetParam());
    spec.cluster.faults.dropProb[std::size_t(net::MsgType::Lease)] =
        0.3;
    addCrash(spec, 0, us(21));
    auto a = fingerprint(core::runOne(spec));
    auto b = fingerprint(core::runOne(spec));
    EXPECT_EQ(a.cmFailovers, 1u);
    EXPECT_EQ(a.divergent, 0u);
    EXPECT_TRUE(a == b)
        << "CM failover with in-flight grants is not reproducible";
}

INSTANTIATE_TEST_SUITE_P(AllEngines, CmFailover,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return std::string(engineTag(info.param));
                         });

// --- split-brain rule ---------------------------------------------------------

TEST(SplitBrain, MinorityPartitionedCmRefusesToAdvanceTheEpoch)
{
    // Node 0 (acting CM primary) is cut off from everyone -- including
    // its group peers 1 and 2 -- while node 4 permanently crashes
    // inside the window. With only a minority reachable, the primary
    // must refuse the declaration (counted) until the partition heals,
    // then run the view change normally.
    auto spec = recoverySpec(EngineKind::Hades);
    spec.cluster.faults.partitions.push_back(
        FaultConfig::PartitionWindow::isolate(0, 5, us(10), us(90)));
    addCrash(spec, 4, us(20));
    auto res = core::runOne(spec);
    EXPECT_GT(res.quorumRefusals, 0u)
        << "the minority-partitioned CM never refused a declaration";
    EXPECT_EQ(res.viewChanges, 1u)
        << "the declaration must proceed once the partition heals";
    EXPECT_EQ(res.cmFailovers, 0u)
        << "a partitioned (not dead) primary must never be succeeded";
    EXPECT_EQ(res.divergentRecords, 0u);
    EXPECT_GE(res.simTime, us(90))
        << "recovery finished before the partition healed?";

    auto again = fingerprint(core::runOne(spec));
    EXPECT_TRUE(fingerprint(res) == again);
}

// --- recovery during recovery -------------------------------------------------

TEST(RecoveryDuringRecovery, SecondCrashAtAnyInstantStillConverges)
{
    // First crash at us(25); sweep the second crash across instants
    // spanning the whole detection + view-change window of the first
    // (same instant, inside the lease wait, right at declaration,
    // after it). Every case must end with two view changes and zero
    // divergent replicas, audited, and bit-reproducibly.
    for (auto engine : {EngineKind::Baseline, EngineKind::Hades,
                        EngineKind::HadesHybrid}) {
        for (Tick second : {us(25), us(40), us(55), us(70), us(85)}) {
            auto spec = recoverySpec(engine);
            addCrash(spec, 2, us(25));
            addCrash(spec, 4, second);
            auto res = core::runOne(spec);
            EXPECT_EQ(res.viewChanges, 2u)
                << engineTag(engine) << " second crash at " << second;
            EXPECT_EQ(res.divergentRecords, 0u)
                << engineTag(engine) << " second crash at " << second;
        }
    }
}

TEST(RecoveryDuringRecovery, SecondCrashSweepIsReproducible)
{
    auto spec = recoverySpec(EngineKind::HadesHybrid);
    addCrash(spec, 2, us(25));
    addCrash(spec, 4, us(55));
    auto a = fingerprint(core::runOne(spec));
    auto b = fingerprint(core::runOne(spec));
    EXPECT_EQ(a.viewChanges, 2u);
    EXPECT_TRUE(a == b);
}

// --- regression: duplicated confirm-Acks across an epoch fence ----------------

class DupAckFence : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(DupAckFence, DuplicatedAcksAcrossTheFenceStayIdempotent)
{
    // Heavy duplication and reordering of the Ack verb (commit Acks
    // AND reliable-channel confirm-Acks ride it) while a crash fences
    // the epoch mid-run: a confirm-Ack duplicated in flight may be
    // delivered once before the fence and once after it, and a fenced
    // copy must count as fenced -- never as a second confirmation or a
    // double-counted commit Ack. The auditor underneath verifies no
    // transaction commits twice; the counters pin determinism.
    auto spec = recoverySpec(GetParam());
    spec.cluster.faults.dupProb[std::size_t(net::MsgType::Ack)] = 0.5;
    spec.cluster.faults.delayProb[std::size_t(net::MsgType::Ack)] =
        0.3;
    addCrash(spec, 2, us(25));
    auto res = core::runOne(spec);
    EXPECT_EQ(res.viewChanges, 1u);
    EXPECT_GT(res.faultDuplicates, 0u)
        << "the dup knob never duplicated an Ack";
    EXPECT_EQ(res.divergentRecords, 0u);
    auto again = fingerprint(core::runOne(spec));
    EXPECT_TRUE(fingerprint(res) == again)
        << "dup+fence interaction is not reproducible";
}

INSTANTIATE_TEST_SUITE_P(AllEngines, DupAckFence,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return std::string(engineTag(info.param));
                         });

// --- regression: promote in flight across the re-homing ring switch ----------

class PromoteInFlight : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(PromoteInFlight, RehomedRingIsRepairedDespiteInFlightPromotes)
{
    // Fuzzer-found (seed 38 of the CI matrix): heavy Validation loss
    // stretches a committed transaction's promote across the crash
    // detection window, so at view-change time the new primary holds
    // no durable image of a re-homed record. The old ring's resend
    // loop eventually lands the promote -- but only on the *old*
    // backup set, never on the node that entered the ring when the
    // re-homing changed which primary the walk skips. Step 6b must
    // repair from the authoritative committed value (which the
    // serialization point recorded), not from the new primary's
    // possibly-lagging image.
    auto spec = recoverySpec(GetParam());
    spec.cluster.faults.dropProb[std::size_t(
        net::MsgType::Validation)] = 0.35;
    spec.cluster.faults.dupProb[std::size_t(net::MsgType::RdmaRead)] =
        0.05;
    addCrash(spec, 1, us(24));
    auto res = core::runOne(spec);
    EXPECT_EQ(res.viewChanges, 1u);
    EXPECT_GT(res.stats.committed, 0u);
    EXPECT_EQ(res.divergentRecords, 0u)
        << "a live backup of the re-homed ring misses a committed "
           "value";
    auto again = fingerprint(core::runOne(spec));
    EXPECT_TRUE(fingerprint(res) == again);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, PromoteInFlight,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return std::string(engineTag(info.param));
                         });

// --- RobustnessTuning is actually wired through -------------------------------

TEST(RobustnessTuning_, RetryTimingKnobsSteerTheResendMachinery)
{
    // Same lossy scenario under two retry-timeout settings: the number
    // of retransmissions is drop-driven either way, but *when* a lost
    // message is recovered is pure RTO timing, so the completion time
    // must move. This pins the consolidation of the old scattered
    // knobs into ClusterConfig::tuning -- a knob that silently stopped
    // being read would make these runs identical.
    auto spec = baseSpec(EngineKind::Hades);
    spec.cluster.faults.dropAll(0.1);
    auto fast = core::runOne(spec);
    spec.cluster.tuning.retryTimeoutBase = us(16);
    spec.cluster.tuning.retryTimeoutCap = us(64);
    auto slow = core::runOne(spec);
    EXPECT_GT(fast.netRetransmits, 0u);
    EXPECT_NE(fast.simTime, slow.simTime)
        << "retry tuning knobs appear to be dead config";
}

TEST(RobustnessTuning_, ReliableResendBudgetBoundsTheChannel)
{
    // maxReliableResends = 0 (default) preserves the unbounded PR-1
    // semantics; a small budget must strictly reduce reliable resends
    // under loss while the run still completes (commit-phase
    // squash-and-retry absorbs what the channel gives up on).
    auto spec = baseSpec(EngineKind::Hades);
    spec.cluster.faults.dropAll(0.15);
    auto unbounded = core::runOne(spec);
    spec.cluster.tuning.maxReliableResends = 1;
    auto bounded = core::runOne(spec);
    EXPECT_EQ(unbounded.stats.committed, kFullQuota);
    EXPECT_EQ(bounded.stats.committed, kFullQuota);
    EXPECT_LE(bounded.reliableResends, unbounded.reliableResends);
}

} // namespace
} // namespace hades
