/**
 * @file
 * Tests for the DRAM timing model: row-buffer behaviour, bank
 * queueing, channel interleaving, and the Table III ~100ns calibration.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace hades::mem
{
namespace
{

TEST(Dram, UncontendedRowMissIsTableIIILatency)
{
    DramModel dram;
    auto a = dram.access(0x10000, 0);
    EXPECT_FALSE(a.rowHit);
    // tRp + tRcd + tCas + tBurst + controller = 100ns.
    EXPECT_EQ(a.latency, ns(100));
}

TEST(Dram, RowHitIsCheaper)
{
    DramModel dram;
    Addr a = 0x10000;
    // Same row, different line, after the bank is free again.
    auto miss = dram.access(a, 0);
    auto hit = dram.access(a + 4 * dram.params().channels *
                                   kCacheLineBytes,
                           us(1));
    // Must be the same bank/row for the hit: channel interleave means
    // line + k*channels*64 stays on the same channel; within rowBytes
    // it is the same row.
    EXPECT_TRUE(hit.rowHit);
    EXPECT_LT(hit.latency, miss.latency);
}

TEST(Dram, BankConflictQueues)
{
    DramModel dram;
    Addr a = 0;
    Addr same_bank = a + 64 * dram.params().channels; // same channel
    // Force both into the same bank/row region.
    auto first = dram.access(a, 0);
    auto second = dram.access(same_bank, 0); // issued at the same time
    // The second waits for the first's bank occupancy.
    EXPECT_GT(second.latency, first.latency - ns(60));
    EXPECT_GE(second.latency, ns(30));
}

TEST(Dram, DifferentChannelsDoNotQueue)
{
    DramModel dram;
    auto p = dram.params();
    ASSERT_GE(p.channels, 2u);
    Addr a = 0;
    Addr b = kCacheLineBytes; // next line -> next channel
    ASSERT_NE(dram.bankOf(a), dram.bankOf(b));
    auto first = dram.access(a, 0);
    auto second = dram.access(b, 0);
    EXPECT_EQ(first.latency, second.latency); // no queueing
}

TEST(Dram, SequentialStreamHitsRows)
{
    DramModel dram;
    // Stream 256 consecutive lines at widely spaced times.
    for (int i = 0; i < 256; ++i)
        dram.access(Addr(i) * kCacheLineBytes, Tick(i) * us(1));
    // After the first touch of each (channel, row), the rest hit.
    EXPECT_GT(dram.rowHitRate(), 0.8);
    EXPECT_EQ(dram.accesses(), 256u);
}

TEST(Dram, RandomStreamMissesRows)
{
    DramModel dram;
    std::uint64_t x = 12345;
    for (int i = 0; i < 512; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        dram.access((x >> 16) & ~Addr{63}, Tick(i) * us(1));
    }
    EXPECT_LT(dram.rowHitRate(), 0.2);
}

TEST(Dram, BankOfIsStable)
{
    DramModel dram;
    for (Addr a = 0; a < 1 << 20; a += 4096)
        EXPECT_EQ(dram.bankOf(a), dram.bankOf(a));
}

} // namespace
} // namespace hades::mem
