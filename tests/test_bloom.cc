/**
 * @file
 * Unit and property tests for the Bloom filter hardware models: plain
 * filters, the split write filter of Figure 8, and the Locking Buffer
 * bank of Figure 7.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bloom/bloom_filter.hh"
#include "bloom/locking_buffer.hh"
#include "bloom/split_write_bloom.hh"
#include "common/rng.hh"

namespace hades::bloom
{
namespace
{

Addr
randomLine(Rng &rng)
{
    return rng.next() & ~Addr{kCacheLineBytes - 1};
}

TEST(BloomFilter, NoFalseNegatives)
{
    BloomFilter bf{1024, 4};
    Rng rng{11};
    std::vector<Addr> lines;
    for (int i = 0; i < 76; ++i) // max lines read per txn in the paper
        lines.push_back(randomLine(rng));
    for (Addr a : lines)
        bf.insert(a);
    for (Addr a : lines)
        EXPECT_TRUE(bf.mayContain(a));
}

TEST(BloomFilter, EmptyContainsNothing)
{
    BloomFilter bf{1024, 4};
    Rng rng{12};
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(bf.mayContain(randomLine(rng)));
}

TEST(BloomFilter, ClearResets)
{
    BloomFilter bf{1024, 4};
    bf.insert(64);
    EXPECT_TRUE(bf.mayContain(64));
    EXPECT_EQ(bf.insertedCount(), 1u);
    bf.clear();
    EXPECT_FALSE(bf.mayContain(64));
    EXPECT_EQ(bf.insertedCount(), 0u);
    EXPECT_EQ(bf.popcount(), 0u);
    EXPECT_TRUE(bf.empty());
}

TEST(BloomFilter, CloneIsIndependent)
{
    BloomFilter bf{1024, 4};
    bf.insert(128);
    auto copy = bf.clone();
    bf.clear();
    EXPECT_TRUE(copy->mayContain(128));
    EXPECT_FALSE(bf.mayContain(128));
}

/**
 * Empirical false-positive rate should track the theoretical
 * (1 - e^{-kn/m})^k within a factor, for the geometries in Table IV.
 */
struct FprCase
{
    std::uint32_t bits;
    std::uint32_t hashes;
    std::uint32_t inserted;
};

class BloomFprTest : public ::testing::TestWithParam<FprCase>
{};

TEST_P(BloomFprTest, EmpiricalMatchesTheory)
{
    const auto p = GetParam();
    Rng rng{1234};
    constexpr int kTrials = 60;
    constexpr int kProbes = 4000;
    std::uint64_t fps = 0, probes = 0;
    for (int t = 0; t < kTrials; ++t) {
        BloomFilter bf{p.bits, p.hashes};
        std::set<Addr> members;
        while (members.size() < p.inserted) {
            Addr a = randomLine(rng);
            if (members.insert(a).second)
                bf.insert(a);
        }
        for (int i = 0; i < kProbes; ++i) {
            Addr a = randomLine(rng);
            if (members.count(a))
                continue;
            ++probes;
            fps += bf.mayContain(a) ? 1 : 0;
        }
    }
    double empirical = double(fps) / double(probes);
    double theory = BloomFilter::theoreticalFpr(p.bits, p.hashes,
                                                p.inserted);
    // Loose band: within 3x either way plus small additive slack.
    EXPECT_LT(empirical, theory * 3.0 + 5e-4);
    EXPECT_GT(empirical + 5e-4, theory / 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    TableIVGeometries, BloomFprTest,
    ::testing::Values(FprCase{1024, 4, 10}, FprCase{1024, 4, 20},
                      FprCase{1024, 4, 50}, FprCase{1024, 4, 100},
                      FprCase{512, 3, 20}, FprCase{4096, 4, 100}));

// --- split write filter ------------------------------------------------------

SplitWriteBloomParams
defaultSplitParams()
{
    return SplitWriteBloomParams{512, 3, 4096};
}

TEST(SplitWriteBloom, NoFalseNegatives)
{
    SplitWriteBloomFilter bf{defaultSplitParams(), 20480};
    Rng rng{21};
    std::vector<Addr> lines;
    for (int i = 0; i < 40; ++i) // max lines written per txn in the paper
        lines.push_back(randomLine(rng));
    for (Addr a : lines)
        bf.insert(a);
    for (Addr a : lines)
        EXPECT_TRUE(bf.mayContain(a));
}

TEST(SplitWriteBloom, Bf2CoversInsertedSets)
{
    SplitWriteBloomFilter bf{defaultSplitParams(), 20480};
    Addr line = 64 * 12345;
    bf.insert(line);
    auto covered = bf.candidateLlcSets();
    std::uint64_t target_set = bf.llcSetOf(line);
    bool found = false;
    for (auto s : covered)
        found |= (s == target_set);
    EXPECT_TRUE(found) << "WrBF2 must cover the set of an inserted line";
    // With one line inserted, only the sets sharing that WrBF2 bit are
    // candidates: 20480 sets / 4096 bits = 5 sets per bit.
    EXPECT_EQ(covered.size(), 20480u / 4096u);
}

TEST(SplitWriteBloom, CombinedFilterIsAtLeastAsSelective)
{
    // The split design must never have a higher false-positive rate than
    // its CRC section alone: membership requires both sections to hit.
    SplitWriteBloomFilter split{defaultSplitParams(), 20480};
    BloomFilter plain{512, 3};
    Rng rng{31};
    for (int i = 0; i < 40; ++i) {
        Addr a = randomLine(rng);
        split.insert(a);
        plain.insert(a);
    }
    int split_hits = 0, plain_hits = 0;
    for (int i = 0; i < 20000; ++i) {
        Addr probe = randomLine(rng);
        split_hits += split.mayContain(probe) ? 1 : 0;
        plain_hits += plain.mayContain(probe) ? 1 : 0;
    }
    EXPECT_LE(split_hits, plain_hits);
}

TEST(SplitWriteBloom, PaperTableIVOrderOfMagnitude)
{
    // Table IV row 2 (512bit+4Kbit): ~0.003% at 10 lines, ~0.439% at 100
    // lines. Verify we land in the right order of magnitude.
    Rng rng{77};
    auto measure = [&](std::uint32_t n_lines) {
        std::uint64_t fp = 0, probes = 0;
        for (int t = 0; t < 40; ++t) {
            SplitWriteBloomFilter bf{defaultSplitParams(), 20480};
            std::set<Addr> members;
            while (members.size() < n_lines) {
                Addr a = randomLine(rng);
                if (members.insert(a).second)
                    bf.insert(a);
            }
            for (int i = 0; i < 20000; ++i) {
                Addr a = randomLine(rng);
                if (members.count(a))
                    continue;
                ++probes;
                fp += bf.mayContain(a) ? 1 : 0;
            }
        }
        return double(fp) / double(probes);
    };
    EXPECT_LT(measure(10), 0.0005);  // paper: 0.003%
    double fpr100 = measure(100);
    EXPECT_GT(fpr100, 0.0005); // paper: 0.439%
    EXPECT_LT(fpr100, 0.02);
}

TEST(SplitWriteBloom, ClearResetsBothSections)
{
    SplitWriteBloomFilter bf{defaultSplitParams(), 20480};
    bf.insert(640);
    bf.clear();
    EXPECT_FALSE(bf.mayContain(640));
    EXPECT_EQ(bf.bf2Popcount(), 0u);
    EXPECT_TRUE(bf.empty());
}

// --- locking buffers ----------------------------------------------------------

TEST(LockingBuffer, AcquireReleaseLifecycle)
{
    LockingBufferBank bank{4};
    BloomFilter rd{1024, 4}, wr{1024, 4};
    rd.insert(64);
    wr.insert(128);
    std::vector<Addr> writes{128};
    EXPECT_EQ(AcquireResult::Acquired, bank.tryAcquire(1, rd, wr, writes));
    EXPECT_TRUE(bank.held(1));
    EXPECT_EQ(bank.activeCount(), 1u);
    bank.release(1);
    EXPECT_FALSE(bank.held(1));
    EXPECT_EQ(bank.activeCount(), 0u);
}

TEST(LockingBuffer, WriteBlockedByActiveReadBf)
{
    LockingBufferBank bank{4};
    BloomFilter rd{1024, 4}, wr{1024, 4};
    rd.insert(64);
    std::vector<Addr> no_writes;
    ASSERT_EQ(AcquireResult::Acquired, bank.tryAcquire(1, rd, wr, no_writes));

    // Another transaction writing a line the committer read: denied.
    EXPECT_TRUE(bank.accessBlocked(64, /*is_write=*/true, 2));
    // Reading that line is fine (only writes conflict with reads).
    EXPECT_FALSE(bank.accessBlocked(64, /*is_write=*/false, 2));
    // The owner itself is never blocked.
    EXPECT_FALSE(bank.accessBlocked(64, true, 1));
}

TEST(LockingBuffer, ReadBlockedByActiveWriteBf)
{
    LockingBufferBank bank{4};
    BloomFilter rd{1024, 4}, wr{1024, 4};
    wr.insert(192);
    std::vector<Addr> writes{192};
    ASSERT_EQ(AcquireResult::Acquired, bank.tryAcquire(1, rd, wr, writes));
    EXPECT_TRUE(bank.accessBlocked(192, false, 2));
    EXPECT_TRUE(bank.accessBlocked(192, true, 2));
}

TEST(LockingBuffer, ConcurrentNonConflictingCommits)
{
    LockingBufferBank bank{4};
    BloomFilter rd1{1024, 4}, wr1{1024, 4};
    BloomFilter rd2{1024, 4}, wr2{1024, 4};
    wr1.insert(64);
    wr2.insert(4096);
    std::vector<Addr> w1{64}, w2{4096};
    EXPECT_EQ(AcquireResult::Acquired, bank.tryAcquire(1, rd1, wr1, w1));
    EXPECT_EQ(AcquireResult::Acquired, bank.tryAcquire(2, rd2, wr2, w2));
    EXPECT_EQ(bank.activeCount(), 2u);
}

TEST(LockingBuffer, ConflictingCommitIsRejected)
{
    LockingBufferBank bank{4};
    BloomFilter rd1{1024, 4}, wr1{1024, 4};
    wr1.insert(64);
    std::vector<Addr> w1{64};
    ASSERT_EQ(AcquireResult::Acquired, bank.tryAcquire(1, rd1, wr1, w1));

    // Second committer writes the same line: rejected at acquire.
    BloomFilter rd2{1024, 4}, wr2{1024, 4};
    wr2.insert(64);
    EXPECT_EQ(AcquireResult::Conflict, bank.tryAcquire(2, rd2, wr2, w1));
    EXPECT_EQ(bank.acquireFailures(), 1u);
}

TEST(LockingBuffer, CommitWritingWhatAnotherRead)
{
    LockingBufferBank bank{4};
    BloomFilter rd1{1024, 4}, wr1{1024, 4};
    rd1.insert(640);
    std::vector<Addr> none;
    ASSERT_EQ(AcquireResult::Acquired, bank.tryAcquire(1, rd1, wr1, none));

    BloomFilter rd2{1024, 4}, wr2{1024, 4};
    wr2.insert(640);
    std::vector<Addr> w2{640};
    EXPECT_EQ(AcquireResult::Conflict, bank.tryAcquire(2, rd2, wr2, w2));
}

TEST(LockingBuffer, BankExhaustion)
{
    LockingBufferBank bank{2};
    BloomFilter rd{1024, 4}, wr{1024, 4};
    std::vector<Addr> none;
    EXPECT_EQ(AcquireResult::Acquired, bank.tryAcquire(1, rd, wr, none));
    EXPECT_EQ(AcquireResult::Acquired, bank.tryAcquire(2, rd, wr, none));
    EXPECT_EQ(AcquireResult::NoBuffer, bank.tryAcquire(3, rd, wr, none));
    bank.release(1);
    EXPECT_EQ(AcquireResult::Acquired, bank.tryAcquire(3, rd, wr, none));
}

TEST(LockingBuffer, ReadGuardStallsWritesOnly)
{
    LockingBufferBank bank{2};
    std::vector<Addr> lines{64, 128, 192};
    ASSERT_TRUE(bank.acquireReadGuard(7, lines));
    EXPECT_TRUE(bank.accessBlocked(128, true, 9));
    EXPECT_FALSE(bank.accessBlocked(128, false, 9));
    bank.release(7);
    EXPECT_FALSE(bank.accessBlocked(128, true, 9));
}

TEST(LockingBuffer, SplitWriteFilterInBuffer)
{
    // Locking Buffers must accept the core's split write BF design too.
    LockingBufferBank bank{2};
    BloomFilter rd{1024, 4};
    SplitWriteBloomFilter wr{SplitWriteBloomParams{512, 3, 4096}, 20480};
    wr.insert(64 * 999);
    std::vector<Addr> writes{64 * 999};
    ASSERT_EQ(AcquireResult::Acquired, bank.tryAcquire(1, rd, wr, writes));
    EXPECT_TRUE(bank.accessBlocked(64 * 999, false, 2));
}

} // namespace
} // namespace hades::bloom
