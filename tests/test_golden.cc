/**
 * @file
 * Golden-run determinism regression (PR 3 tentpole contract).
 *
 * Every simulation must be a pure function of its RunSpec: re-running
 * the same spec serially, through runMany() with one worker, or through
 * runMany() with eight workers must reproduce every RunResult field
 * bit-for-bit. The matrix spans the three engines, two workloads, fault
 * injection on/off, and the correctness auditor on/off, so a
 * determinism regression in any of those layers trips this test.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "core/sweep.hh"

namespace
{

using namespace hades;

/** FNV-1a over every observable RunResult field. Doubles are hashed by
 *  bit pattern: "close" is not "equal" for a determinism contract. */
class ResultHasher
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 0x100000001b3ULL;
        }
    }

    void d(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        for (unsigned char c : s) {
            h_ ^= c;
            h_ *= 0x100000001b3ULL;
        }
        u64(s.size());
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

std::uint64_t
hashResult(const core::RunResult &r)
{
    ResultHasher h;
    h.str(r.label);
    h.u64(r.stats.committed);
    h.u64(r.stats.attempts);
    h.u64(r.stats.lockModeFallbacks);
    for (auto s : r.stats.squashes)
        h.u64(s);
    for (auto t : r.stats.overheadTicks)
        h.u64(static_cast<std::uint64_t>(t));
    h.u64(static_cast<std::uint64_t>(r.stats.totalBusyTicks));
    h.u64(r.stats.bfConflictChecks);
    h.u64(r.stats.bfFalsePositives);
    h.u64(r.stats.maxLinesRead);
    h.u64(r.stats.maxLinesWritten);
    h.u64(r.stats.netMessages);
    h.u64(r.stats.netBytes);
    h.u64(r.stats.timeoutResends);
    h.u64(r.stats.reliableResends);
    h.u64(static_cast<std::uint64_t>(r.simTime));
    h.d(r.throughputTps);
    h.d(r.meanLatencyUs);
    h.d(r.p95LatencyUs);
    h.d(r.p50LatencyUs);
    h.d(r.execUs);
    h.d(r.validationUs);
    h.d(r.commitUs);
    for (double s : r.overheadShare)
        h.d(s);
    h.d(r.otherShare);
    h.d(r.squashRate);
    h.d(r.evictionSquashRate);
    h.d(r.bfFalsePositiveRate);
    h.u64(r.replicatedCommits);
    h.u64(r.replicationAborts);
    h.u64(r.lostReplicaMessages);
    h.u64(r.faultDrops);
    h.u64(r.faultDuplicates);
    h.u64(r.faultDelays);
    h.u64(r.faultNicStalls);
    h.u64(r.faultCrashDrops);
    h.u64(r.netRetransmits);
    h.u64(r.timeoutResends);
    h.u64(r.reliableResends);
    h.u64(r.timeoutSquashes);
    h.u64(r.audited ? 1 : 0);
    h.u64(r.auditedCommits);
    h.u64(r.auditedAborts);
    h.u64(r.auditGraphEdges);
    h.u64(r.auditChecks);
    return h.value();
}

/** The golden matrix: engines x workloads x faults x audit, sized to
 *  finish in seconds while still exercising every protocol path. */
std::vector<core::RunSpec>
goldenSpecs()
{
    const protocol::EngineKind engines[] = {
        protocol::EngineKind::Baseline,
        protocol::EngineKind::HadesHybrid,
        protocol::EngineKind::Hades,
    };
    const core::MixEntry workloads[] = {
        {workload::AppKind::YcsbA, kvs::StoreKind::HashTable},
        {workload::AppKind::Tpcc, kvs::StoreKind::HashTable},
    };

    std::vector<core::RunSpec> specs;
    for (auto engine : engines) {
        for (const auto &entry : workloads) {
            for (bool faults : {false, true}) {
                for (bool audit : {false, true}) {
                    core::RunSpec spec;
                    spec.engine = engine;
                    spec.mix = {entry};
                    spec.cluster.numNodes = 3;
                    spec.cluster.coresPerNode = 2;
                    spec.cluster.slotsPerCore = 2;
                    spec.txnsPerContext = 10;
                    spec.scaleKeys = 4000;
                    spec.audit = audit;
                    if (faults) {
                        spec.cluster.faults.enabled = true;
                        spec.cluster.faults.dropAll(0.02);
                        spec.cluster.faults.dupAll(0.01);
                        spec.cluster.faults.delayAll(0.02);
                    }
                    specs.push_back(spec);
                }
            }
        }
    }
    return specs;
}

TEST(Golden, SerialRerunIsBitIdentical)
{
    for (const auto &spec : goldenSpecs()) {
        const auto first = hashResult(core::runOne(spec));
        const auto second = hashResult(core::runOne(spec));
        EXPECT_EQ(first, second)
            << "engine=" << int(spec.engine)
            << " app=" << int(spec.mix[0].app)
            << " faults=" << spec.cluster.faults.enabled
            << " audit=" << spec.audit;
    }
}

TEST(Golden, RunManyMatchesSerialAtAnyJobCount)
{
    const auto specs = goldenSpecs();

    std::vector<std::uint64_t> serial;
    serial.reserve(specs.size());
    for (const auto &spec : specs)
        serial.push_back(hashResult(core::runOne(spec)));

    for (unsigned jobs : {1u, 8u}) {
        core::SweepOptions opts;
        opts.jobs = jobs;
        const auto outcomes = core::runMany(specs, opts);
        ASSERT_EQ(outcomes.size(), specs.size());
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            ASSERT_TRUE(outcomes[i].ok)
                << "jobs=" << jobs << " i=" << i << ": "
                << outcomes[i].error;
            EXPECT_EQ(outcomes[i].index, i);
            EXPECT_EQ(hashResult(outcomes[i].result), serial[i])
                << "jobs=" << jobs << " spec " << i
                << " diverged from the serial run";
        }
    }
}

} // namespace
