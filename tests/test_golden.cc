/**
 * @file
 * Golden-run determinism regression (PR 3 tentpole contract).
 *
 * Every simulation must be a pure function of its RunSpec: re-running
 * the same spec serially, through runMany() with one worker, or through
 * runMany() with eight workers must reproduce every RunResult field
 * bit-for-bit. The matrix spans the three engines, two workloads, fault
 * injection on/off, and the correctness auditor on/off, so a
 * determinism regression in any of those layers trips this test.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/result_hash.hh"
#include "core/runner.hh"
#include "core/sweep.hh"

namespace
{

using namespace hades;
using hades::core::hashResult;

/** The golden matrix: engines x workloads x faults x audit, sized to
 *  finish in seconds while still exercising every protocol path. */
std::vector<core::RunSpec>
goldenSpecs()
{
    const protocol::EngineKind engines[] = {
        protocol::EngineKind::Baseline,
        protocol::EngineKind::HadesHybrid,
        protocol::EngineKind::Hades,
    };
    const core::MixEntry workloads[] = {
        {workload::AppKind::YcsbA, kvs::StoreKind::HashTable},
        {workload::AppKind::Tpcc, kvs::StoreKind::HashTable},
    };

    std::vector<core::RunSpec> specs;
    for (auto engine : engines) {
        for (const auto &entry : workloads) {
            for (bool faults : {false, true}) {
                for (bool audit : {false, true}) {
                    core::RunSpec spec;
                    spec.engine = engine;
                    spec.mix = {entry};
                    spec.cluster.numNodes = 3;
                    spec.cluster.coresPerNode = 2;
                    spec.cluster.slotsPerCore = 2;
                    spec.txnsPerContext = 10;
                    spec.scaleKeys = 4000;
                    spec.audit = audit;
                    if (faults) {
                        spec.cluster.faults.enabled = true;
                        spec.cluster.faults.dropAll(0.02);
                        spec.cluster.faults.dupAll(0.01);
                        spec.cluster.faults.delayAll(0.02);
                    }
                    specs.push_back(spec);
                }
            }
        }
    }
    return specs;
}

TEST(Golden, SerialRerunIsBitIdentical)
{
    for (const auto &spec : goldenSpecs()) {
        const auto first = hashResult(core::runOne(spec));
        const auto second = hashResult(core::runOne(spec));
        EXPECT_EQ(first, second)
            << "engine=" << int(spec.engine)
            << " app=" << int(spec.mix[0].app)
            << " faults=" << spec.cluster.faults.enabled
            << " audit=" << spec.audit;
    }
}

TEST(Golden, RunManyMatchesSerialAtAnyJobCount)
{
    const auto specs = goldenSpecs();

    std::vector<std::uint64_t> serial;
    serial.reserve(specs.size());
    for (const auto &spec : specs)
        serial.push_back(hashResult(core::runOne(spec)));

    for (unsigned jobs : {1u, 8u}) {
        core::SweepOptions opts;
        opts.jobs = jobs;
        const auto outcomes = core::runMany(specs, opts);
        ASSERT_EQ(outcomes.size(), specs.size());
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            ASSERT_TRUE(outcomes[i].ok)
                << "jobs=" << jobs << " i=" << i << ": "
                << outcomes[i].error;
            EXPECT_EQ(outcomes[i].index, i);
            EXPECT_EQ(hashResult(outcomes[i].result), serial[i])
                << "jobs=" << jobs << " spec " << i
                << " diverged from the serial run";
        }
    }
}

} // namespace
