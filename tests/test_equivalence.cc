/**
 * @file
 * Cross-engine equivalence and fuzz properties.
 *
 * The three protocol engines implement the same transactional
 * semantics with different mechanisms, so:
 *
 *  - a single context executing a deterministic program sequence must
 *    leave the *identical* final database state under every engine
 *    (and that state must match a functional replay oracle);
 *  - under full concurrency, randomized transfer workloads must
 *    conserve the total balance on every engine, across cluster
 *    geometries and seeds (parameterized sweep);
 *  - both properties must survive light fault injection (message drops,
 *    duplicates, reorder delays): the recovery paths may retry and
 *    squash, but the committed history must stay serializable.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/runner.hh"
#include "fault/fault_plan.hh"
#include "protocol/system.hh"
#include "sim/task.hh"

namespace hades
{
namespace
{

using protocol::EngineKind;
using protocol::ExecCtx;
using protocol::System;
using protocol::TxnEngine;

/** Random but deterministic program: reads then derived/blind writes. */
txn::TxnProgram
fuzzProgram(Rng &rng, std::uint64_t num_records)
{
    txn::TxnProgram prog;
    std::uint32_t reads = 1 + std::uint32_t(rng.below(3));
    for (std::uint32_t i = 0; i < reads; ++i) {
        txn::Request r;
        r.record = rng.below(num_records);
        prog.requests.push_back(r);
    }
    std::uint32_t writes = 1 + std::uint32_t(rng.below(3));
    for (std::uint32_t i = 0; i < writes; ++i) {
        txn::Request w;
        w.record = rng.below(num_records);
        w.isWrite = true;
        if (rng.chance(0.6)) {
            w.derivedFromReadIdx = int(rng.below(reads));
            w.delta = std::int64_t(rng.below(20)) - 10;
        } else {
            w.delta = std::int64_t(rng.below(1000));
        }
        prog.requests.push_back(w);
    }
    return prog;
}

/** Functional replay oracle for serial execution. */
void
replay(std::map<std::uint64_t, std::int64_t> &db,
       const txn::TxnProgram &prog)
{
    std::vector<std::int64_t> read_vals;
    std::map<std::uint64_t, std::int64_t> buffered;
    auto value_of = [&](std::uint64_t rec) {
        if (buffered.count(rec))
            return buffered[rec];
        return db.count(rec) ? db[rec] : std::int64_t{0};
    };
    for (const auto &req : prog.requests) {
        if (req.isWrite) {
            std::int64_t v =
                req.derivedFromReadIdx >= 0
                    ? read_vals[std::size_t(req.derivedFromReadIdx)] +
                          req.delta
                    : req.delta;
            buffered[req.record] = v;
        } else {
            read_vals.push_back(value_of(req.record));
        }
    }
    for (auto &[rec, v] : buffered)
        db[rec] = v;
}

sim::DetachedTask
runSequence(TxnEngine &engine, ExecCtx ctx,
            const std::vector<txn::TxnProgram> &progs)
{
    for (const auto &p : progs)
        co_await engine.run(ctx, p);
}

/** Light chaos: enough to exercise every recovery path without making
 *  the simulated run long. */
void
lightFaults(ClusterConfig &cfg)
{
    cfg.faults.enabled = true;
    cfg.faults.dropAll(0.02);
    cfg.faults.dupAll(0.05);
    cfg.faults.delayAll(0.10);
    cfg.tuning.retryTimeoutBase = us(4);
    cfg.tuning.retryTimeoutCap = us(32);
}

/** Wire a FaultPlan the way the runner does (no-op when disabled). */
std::unique_ptr<fault::FaultPlan>
attachFaults(System &sys)
{
    if (!sys.config.faults.enabled)
        return nullptr;
    auto plan =
        std::make_unique<fault::FaultPlan>(sys.kernel, sys.config);
    sys.network.setFaultInjector(plan.get());
    std::vector<std::vector<sim::ComputeResource *>> cores_by_node;
    for (auto &node : sys.nodes) {
        std::vector<sim::ComputeResource *> cores;
        for (auto &core : node->cores)
            cores.push_back(core.get());
        cores_by_node.push_back(std::move(cores));
    }
    plan->scheduleNodeEvents(sys.network, cores_by_node);
    return plan;
}

TEST(Equivalence, SerialExecutionMatchesOracleOnEveryEngine)
{
    constexpr std::uint64_t kRecords = 40;
    constexpr int kTxns = 120;

    // One deterministic program sequence for all engines.
    std::vector<txn::TxnProgram> progs;
    Rng rng{0xabcde};
    for (int i = 0; i < kTxns; ++i)
        progs.push_back(fuzzProgram(rng, kRecords));

    // Oracle.
    std::map<std::uint64_t, std::int64_t> oracle;
    for (const auto &p : progs)
        replay(oracle, p);

    for (auto kind : {EngineKind::Baseline, EngineKind::Hades,
                      EngineKind::HadesHybrid}) {
        ClusterConfig cfg;
        cfg.numNodes = 3;
        cfg.coresPerNode = 1;
        cfg.slotsPerCore = 1;
        System sys(cfg, kRecords,
                   core::engineRecordBytes(kind,
                                           cfg.recordPayloadBytes));
        auto engine =
            core::makeEngine(kind, sys, cfg.recordPayloadBytes);
        runSequence(*engine, ExecCtx{0, 0, 0}, progs);
        ASSERT_TRUE(sys.kernel.run()) << engine->name();
        EXPECT_EQ(engine->stats().committed, std::uint64_t(kTxns));
        // A serial context must never be squashed.
        EXPECT_EQ(engine->stats().totalSquashes(), 0u)
            << engine->name();
        for (std::uint64_t rec = 0; rec < kRecords; ++rec) {
            std::int64_t expect =
                oracle.count(rec) ? oracle[rec] : 0;
            EXPECT_EQ(sys.data.read(rec), expect)
                << engine->name() << " diverged on record " << rec;
        }
    }
}

// --- seeded differential sweep: fault-free and light-fault -------------------

struct DiffCase
{
    std::uint64_t seed;
    bool faulty;
};

class DifferentialSweep : public ::testing::TestWithParam<DiffCase>
{};

/**
 * A serial context must produce the oracle's database on every engine,
 * with or without message-level faults. Under faults, retries and
 * timeout squashes are allowed (a serial context never conflicts, but
 * it can lose commit traffic); the committed count and the final state
 * must still be exact.
 */
TEST_P(DifferentialSweep, EnginesMatchOracle)
{
    const auto p = GetParam();
    constexpr std::uint64_t kRecords = 32;
    constexpr int kTxns = 60;

    std::vector<txn::TxnProgram> progs;
    Rng rng{0x5eed0000 + p.seed};
    for (int i = 0; i < kTxns; ++i)
        progs.push_back(fuzzProgram(rng, kRecords));

    std::map<std::uint64_t, std::int64_t> oracle;
    for (const auto &p2 : progs)
        replay(oracle, p2);

    for (auto kind : {EngineKind::Baseline, EngineKind::Hades,
                      EngineKind::HadesHybrid}) {
        ClusterConfig cfg;
        cfg.numNodes = 3;
        cfg.coresPerNode = 1;
        cfg.slotsPerCore = 1;
        cfg.seed = 100 + p.seed;
        if (p.faulty)
            lightFaults(cfg);
        System sys(cfg, kRecords,
                   core::engineRecordBytes(kind,
                                           cfg.recordPayloadBytes));
        auto engine =
            core::makeEngine(kind, sys, cfg.recordPayloadBytes);
        auto plan = attachFaults(sys);
        runSequence(*engine, ExecCtx{0, 0, 0}, progs);
        ASSERT_TRUE(sys.kernel.run()) << engine->name();
        EXPECT_EQ(engine->stats().committed, std::uint64_t(kTxns))
            << engine->name();
        if (!p.faulty) {
            EXPECT_EQ(engine->stats().totalSquashes(), 0u)
                << engine->name();
        }
        for (std::uint64_t rec = 0; rec < kRecords; ++rec) {
            std::int64_t expect =
                oracle.count(rec) ? oracle[rec] : 0;
            EXPECT_EQ(sys.data.read(rec), expect)
                << engine->name() << " diverged on record " << rec
                << (p.faulty ? " (faulty)" : "") << ", seed "
                << p.seed;
        }
    }
}

std::vector<DiffCase>
diffCases()
{
    std::vector<DiffCase> cases;
    for (std::uint64_t s = 0; s < 8; ++s)
        for (bool faulty : {false, true})
            cases.push_back({s, faulty});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DifferentialSweep, ::testing::ValuesIn(diffCases()),
    [](const auto &info) {
        return "s" + std::to_string(info.param.seed) +
               (info.param.faulty ? "_faulty" : "_clean");
    });

// --- concurrent conservation sweep -------------------------------------------

struct SweepCase
{
    EngineKind engine;
    std::uint32_t nodes;
    std::uint32_t cores;
    std::uint32_t slots;
    std::uint64_t seed;
    bool faulty = false;
};

class ConservationSweep : public ::testing::TestWithParam<SweepCase>
{};

sim::DetachedTask
transferLoop(System &sys, TxnEngine &engine, ExecCtx ctx,
             std::uint64_t records, std::uint64_t seed,
             std::uint64_t txns)
{
    Rng rng{seed};
    for (std::uint64_t i = 0; i < txns; ++i) {
        std::uint64_t a = rng.below(records);
        std::uint64_t b = rng.below(records);
        if (a == b)
            b = (b + 1) % records;
        txn::TxnProgram prog;
        txn::Request ra;
        ra.record = a;
        txn::Request rb;
        rb.record = b;
        txn::Request wa;
        wa.record = a;
        wa.isWrite = true;
        wa.derivedFromReadIdx = 0;
        wa.delta = -3;
        txn::Request wb;
        wb.record = b;
        wb.isWrite = true;
        wb.derivedFromReadIdx = 1;
        wb.delta = 3;
        prog.requests = {ra, rb, wa, wb};
        co_await engine.run(ctx, prog);
    }
}

TEST_P(ConservationSweep, TotalBalancePreserved)
{
    const auto p = GetParam();
    ClusterConfig cfg;
    cfg.numNodes = p.nodes;
    cfg.coresPerNode = p.cores;
    cfg.slotsPerCore = p.slots;
    cfg.seed = p.seed;
    if (p.faulty)
        lightFaults(cfg);
    constexpr std::uint64_t kRecords = 48;
    constexpr std::uint64_t kTxns = 30;

    System sys(cfg, kRecords,
               core::engineRecordBytes(p.engine,
                                       cfg.recordPayloadBytes));
    auto engine =
        core::makeEngine(p.engine, sys, cfg.recordPayloadBytes);
    auto plan = attachFaults(sys);
    for (std::uint64_t r = 0; r < kRecords; ++r)
        sys.data.write(r, 500);

    std::uint64_t seed = p.seed * 977 + 13;
    std::uint64_t contexts = 0;
    for (NodeId n = 0; n < cfg.numNodes; ++n)
        for (CoreId c = 0; c < cfg.coresPerNode; ++c)
            for (SlotId s = 0; s < cfg.slotsPerCore; ++s) {
                transferLoop(sys, *engine, ExecCtx{n, c, s}, kRecords,
                             seed++, kTxns);
                ++contexts;
            }
    ASSERT_TRUE(sys.kernel.run());
    EXPECT_EQ(engine->stats().committed, contexts * kTxns);
    EXPECT_EQ(sys.data.sumRange(0, kRecords - 1),
              std::int64_t(kRecords) * 500)
        << "conservation violated (engine "
        << protocol::engineKindName(p.engine) << ", seed " << p.seed
        << ")";
}

std::vector<SweepCase>
sweepCases()
{
    std::vector<SweepCase> cases;
    std::uint64_t seed = 1;
    for (auto e : {EngineKind::Baseline, EngineKind::Hades,
                   EngineKind::HadesHybrid}) {
        cases.push_back({e, 2, 1, 2, seed++});
        cases.push_back({e, 3, 2, 1, seed++});
        cases.push_back({e, 5, 2, 2, seed++});
        cases.push_back({e, 2, 2, 1, seed++, true});
        cases.push_back({e, 3, 2, 1, seed++, true});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConservationSweep, ::testing::ValuesIn(sweepCases()),
    [](const auto &info) {
        const auto &c = info.param;
        std::string e = c.engine == EngineKind::Baseline ? "Baseline"
                        : c.engine == EngineKind::Hades ? "Hades"
                                                        : "HadesH";
        return e + "_n" + std::to_string(c.nodes) + "c" +
               std::to_string(c.cores) + "m" + std::to_string(c.slots) +
               (c.faulty ? "_faulty" : "");
    });

} // namespace
} // namespace hades
