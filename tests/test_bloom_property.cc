/**
 * @file
 * Seeded randomized property tests for the conflict-detection hardware
 * models, checked against exact shadow sets:
 *
 *  - BloomFilter / SplitWriteBloomFilter must never report a false
 *    negative, and their measured false-positive rate must stay near
 *    the analytic bound.
 *  - SplitWriteBloomFilter::candidateLlcSets() must cover the LLC set
 *    of every inserted line (the Find-LLC-Tags enable signal of
 *    Figure 8 may over-approximate but never miss).
 *  - LockingBufferBank must deny every access that truly overlaps an
 *    active committer's footprint, and its held()/activeCount()
 *    bookkeeping must track an exact shadow model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "bloom/bloom_filter.hh"
#include "bloom/locking_buffer.hh"
#include "bloom/split_write_bloom.hh"
#include "common/config.hh"
#include "common/rng.hh"

namespace
{

using namespace hades;

Addr
randomLine(Rng &rng)
{
    return rng.next() & ~Addr{kCacheLineBytes - 1};
}

std::set<Addr>
randomLineSet(Rng &rng, std::size_t count)
{
    std::set<Addr> lines;
    while (lines.size() < count)
        lines.insert(randomLine(rng));
    return lines;
}

TEST(BloomProperty, NoFalseNegatives)
{
    for (std::uint64_t seed : {1ull, 77ull, 4242ull}) {
        Rng rng{seed};
        bloom::BloomFilter bf{1024, 4};
        auto members = randomLineSet(rng, 60);
        for (Addr a : members)
            bf.insert(a);
        for (Addr a : members)
            EXPECT_TRUE(bf.mayContain(a)) << "seed " << seed;
    }
}

TEST(BloomProperty, FprStaysNearTheTheoreticalBound)
{
    const std::uint32_t bits = 1024, k = 4;
    const std::size_t inserted = 40;
    Rng rng{2024};

    std::uint64_t fp = 0, probes = 0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
        bloom::BloomFilter bf{bits, k};
        auto members = randomLineSet(rng, inserted);
        for (Addr a : members)
            bf.insert(a);
        for (int i = 0; i < 4000; ++i) {
            Addr a = randomLine(rng);
            if (members.count(a))
                continue;
            ++probes;
            fp += bf.mayContain(a) ? 1 : 0;
        }
    }
    const double measured = double(fp) / double(probes);
    const double expected =
        bloom::BloomFilter::theoreticalFpr(bits, k, inserted);
    // Generous slack: the property is "the implementation behaves like
    // a Bloom filter", not a tight statistical test.
    EXPECT_LE(measured, 3.0 * expected + 0.01)
        << "measured " << measured << " vs theoretical " << expected;
    EXPECT_GT(measured, 0.0) << "a filter with zero measured FPR over "
                                "200k probes is suspiciously exact";
}

TEST(BloomProperty, SplitWriteFilterNoFalseNegativesAndSetCoverage)
{
    ClusterConfig cfg;
    for (std::uint64_t seed : {3ull, 99ull}) {
        Rng rng{seed};
        bloom::SplitWriteBloomFilter bf{cfg.coreWriteBf, cfg.llcSets()};
        auto members = randomLineSet(rng, 40);
        for (Addr a : members)
            bf.insert(a);

        std::set<std::uint64_t> candidates;
        for (auto s : bf.candidateLlcSets())
            candidates.insert(s);

        for (Addr a : members) {
            EXPECT_TRUE(bf.mayContain(a)) << "seed " << seed;
            EXPECT_TRUE(candidates.count(bf.llcSetOf(a)))
                << "candidateLlcSets missed the set of an inserted "
                   "line (seed "
                << seed << ")";
        }
    }
}

TEST(BloomProperty, SplitWriteFprBeatsAPlainFilterOfTheSameBudget)
{
    ClusterConfig cfg;
    Rng rng{515};
    std::uint64_t fp = 0, probes = 0;
    for (int t = 0; t < 30; ++t) {
        bloom::SplitWriteBloomFilter bf{cfg.coreWriteBf, cfg.llcSets()};
        auto members = randomLineSet(rng, 40);
        for (Addr a : members)
            bf.insert(a);
        for (int i = 0; i < 4000; ++i) {
            Addr a = randomLine(rng);
            if (members.count(a))
                continue;
            ++probes;
            fp += bf.mayContain(a) ? 1 : 0;
        }
    }
    // Both sections must hit for membership, so the split filter's FPR
    // is bounded by its weaker WrBF1 section alone.
    const double measured = double(fp) / double(probes);
    const double bf1_alone = bloom::BloomFilter::theoreticalFpr(
        cfg.coreWriteBf.bf1Bits, cfg.coreWriteBf.bf1Hashes, 40);
    EXPECT_LE(measured, bf1_alone * 1.5 + 0.01);
}

/** Exact shadow of one active Locking Buffer. */
struct ShadowBuffer
{
    std::uint64_t owner;
    std::set<Addr> reads;
    std::set<Addr> writes;
};

TEST(BloomProperty, LockingBufferBankMatchesExactShadowModel)
{
    ClusterConfig cfg;
    Rng rng{808};
    bloom::LockingBufferBank bank{4};
    std::vector<ShadowBuffer> shadow;

    // Draw lines from a small pool so committers genuinely collide.
    std::vector<Addr> pool;
    for (Addr a : randomLineSet(rng, 48))
        pool.push_back(a);
    auto draw = [&](std::size_t count) {
        std::set<Addr> lines;
        while (lines.size() < count)
            lines.insert(pool[rng.below(pool.size())]);
        return lines;
    };

    for (std::uint64_t op = 0; op < 400; ++op) {
        const std::uint64_t owner = 1 + rng.below(12);
        const bool known =
            std::any_of(shadow.begin(), shadow.end(),
                        [&](const auto &b) { return b.owner == owner; });

        if (known && rng.below(2) == 0) {
            bank.release(owner);
            shadow.erase(std::remove_if(shadow.begin(), shadow.end(),
                                        [&](const auto &b) {
                                            return b.owner == owner;
                                        }),
                         shadow.end());
        } else if (!known) {
            auto reads = draw(1 + rng.below(6));
            auto writes = draw(1 + rng.below(4));
            bloom::BloomFilter read_bf{cfg.nicReadBf.bits,
                                       cfg.nicReadBf.numHashes};
            bloom::BloomFilter write_bf{cfg.nicWriteBf.bits,
                                        cfg.nicWriteBf.numHashes};
            for (Addr a : reads)
                read_bf.insert(a);
            for (Addr a : writes)
                write_bf.insert(a);
            std::vector<Addr> write_lines(writes.begin(), writes.end());

            const bool bank_full = shadow.size() == 4;
            const auto res = bank.tryAcquire(owner, read_bf, write_bf,
                                             write_lines);

            const bool true_overlap = std::any_of(
                shadow.begin(), shadow.end(), [&](const auto &b) {
                    return std::any_of(
                        write_lines.begin(), write_lines.end(),
                        [&](Addr a) {
                            return b.reads.count(a) || b.writes.count(a);
                        });
                });
            if (true_overlap)
                EXPECT_NE(res, bloom::AcquireResult::Acquired)
                    << "op " << op
                    << ": a truly overlapping committer slipped past "
                       "the Locking Buffer check";
            if (bank_full)
                EXPECT_NE(res, bloom::AcquireResult::Acquired)
                    << "op " << op << ": acquired from a full bank";
            if (res == bloom::AcquireResult::Acquired)
                shadow.push_back(ShadowBuffer{owner, std::move(reads),
                                              std::move(writes)});
        }

        // Bookkeeping must track the shadow exactly.
        ASSERT_EQ(bank.activeCount(), shadow.size()) << "op " << op;
        for (const auto &b : shadow)
            ASSERT_TRUE(bank.held(b.owner)) << "op " << op;

        // Accesses that truly overlap an active footprint must be
        // denied (Bloom filters cannot produce false negatives).
        for (const auto &b : shadow) {
            const std::uint64_t stranger = 1000 + op;
            for (Addr a : b.writes)
                EXPECT_TRUE(bank.accessBlocked(a, false, stranger))
                    << "read of a buffered write line was allowed";
            for (Addr a : b.reads)
                EXPECT_TRUE(bank.accessBlocked(a, true, stranger))
                    << "write of a buffered read line was allowed";
            // The owner itself is never blocked by its own buffer.
            for (Addr a : b.writes)
                if (std::none_of(shadow.begin(), shadow.end(),
                                 [&](const auto &o) {
                                     return o.owner != b.owner &&
                                            (o.reads.count(a) ||
                                             o.writes.count(a));
                                 }))
                    EXPECT_FALSE(bank.accessBlocked(a, true, b.owner));
        }
    }
}

} // namespace
