/**
 * @file
 * Tests for the four key-value stores: lookups find every populated
 * key, traces stay on the key's home node, and the structures show the
 * expected depth characteristics.
 */

#include <gtest/gtest.h>

#include <set>

#include "kvs/kvs.hh"

namespace hades::kvs
{
namespace
{

constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kKeys = 20'000;

class StoreTest : public ::testing::TestWithParam<StoreKind>
{
  protected:
    void
    SetUp() override
    {
        placement_ =
            std::make_unique<mem::Placement>(kNodes, kKeys, 256);
        store_ = makeStore(GetParam(), kNodes);
        store_->populate(*placement_, kKeys);
    }

    std::unique_ptr<mem::Placement> placement_;
    std::unique_ptr<KeyValueStore> store_;
};

TEST_P(StoreTest, EveryKeyResolvable)
{
    std::vector<IndexStep> steps;
    for (Key k = 0; k < kKeys; k += 7) {
        steps.clear();
        store_->lookup(k, steps);
        EXPECT_FALSE(steps.empty()) << "key " << k;
    }
}

TEST_P(StoreTest, TraceStaysOnHomeNode)
{
    std::vector<IndexStep> steps;
    for (Key k = 0; k < kKeys; k += 131) {
        steps.clear();
        store_->lookup(k, steps);
        NodeId home = placement_->homeOf(store_->recordOf(k));
        for (const auto &s : steps) {
            EXPECT_EQ(placement_->homeOf(s.record), home)
                << "index node off the home node for key " << k;
        }
    }
}

TEST_P(StoreTest, IndexRecordsAreRegistered)
{
    std::vector<IndexStep> steps;
    store_->lookup(0, steps);
    for (const auto &s : steps) {
        EXPECT_NE(s.record & mem::Placement::kRegisteredBit, 0u);
        EXPECT_GT(s.bytes, 0u);
        // addrOf must not assert: the node was registered.
        (void)placement_->addrOf(s.record);
    }
}

TEST_P(StoreTest, DeterministicTraces)
{
    std::vector<IndexStep> a, b;
    store_->lookup(123, a);
    store_->lookup(123, b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].record, b[i].record);
}

INSTANTIATE_TEST_SUITE_P(AllStores, StoreTest,
                         ::testing::Values(StoreKind::HashTable,
                                           StoreKind::Map,
                                           StoreKind::BTree,
                                           StoreKind::BPlusTree),
                         [](const auto &info) {
                             switch (info.param) {
                               case StoreKind::HashTable:
                                 return "HashTable";
                               case StoreKind::Map:
                                 return "Map";
                               case StoreKind::BTree:
                                 return "BTree";
                               default:
                                 return "BPlusTree";
                             }
                         });

TEST(StoreDepth, HashTableIsShallowest)
{
    mem::Placement p{kNodes, kKeys, 256};
    auto ht = makeStore(StoreKind::HashTable, kNodes, 1);
    auto map = makeStore(StoreKind::Map, kNodes, 2);
    auto bt = makeStore(StoreKind::BTree, kNodes, 3);
    auto bpt = makeStore(StoreKind::BPlusTree, kNodes, 4);
    ht->populate(p, kKeys);
    map->populate(p, kKeys);
    bt->populate(p, kKeys);
    bpt->populate(p, kKeys);

    double d_ht = ht->averageDepth();
    double d_map = map->averageDepth();
    double d_bt = bt->averageDepth();
    double d_bpt = bpt->averageDepth();

    // Hash: ~1 bucket. Trees: a few levels. Skip list: the deepest.
    EXPECT_LT(d_ht, 2.0);
    EXPECT_GT(d_map, d_bt);
    EXPECT_GT(d_bt, d_ht);
    EXPECT_GT(d_bpt, 1.0);
    EXPECT_LT(d_bpt, d_map);
}

TEST(StoreSalt, DisjointIndexIdSpaces)
{
    // Two stores with different salts must never register the same id
    // (required for the space-shared workload mixes).
    mem::Placement p{kNodes, kKeys, 256};
    auto a = makeStore(StoreKind::HashTable, kNodes, 1);
    auto b = makeStore(StoreKind::HashTable, kNodes, 2);
    a->populate(p, 5'000, 0);
    b->populate(p, 5'000, 5'000);
    std::vector<IndexStep> sa, sb;
    std::set<std::uint64_t> ids;
    for (Key k = 0; k < 5'000; k += 13) {
        sa.clear();
        a->lookup(k, sa);
        for (const auto &s : sa)
            ids.insert(s.record);
    }
    for (Key k = 0; k < 5'000; k += 13) {
        sb.clear();
        b->lookup(k, sb);
        for (const auto &s : sb)
            EXPECT_FALSE(ids.count(s.record))
                << "index id collision across salts";
    }
}

TEST(HashTable, OverflowChainsWalkInOrder)
{
    // With a tiny per-node key count, overflow is likely; verify the
    // trace is bucket-then-chain (monotone position).
    mem::Placement p{1, 64, 256};
    HashTableKvs ht{1};
    ht.populate(p, 64);
    std::vector<IndexStep> steps;
    std::size_t longest = 0;
    for (Key k = 0; k < 64; ++k) {
        steps.clear();
        ht.lookup(k, steps);
        longest = std::max(longest, steps.size());
    }
    EXPECT_GE(longest, 1u);
}

TEST(BPlusTree, LeafAlwaysLast)
{
    mem::Placement p{2, 10'000, 256};
    BPlusTreeKvs bpt{2};
    bpt.populate(p, 10'000);
    std::vector<IndexStep> steps;
    bpt.lookup(4242, steps);
    ASSERT_GE(steps.size(), 2u);
    // Inner nodes first, then exactly one leaf: inner size constant.
    for (std::size_t i = 0; i + 1 < steps.size(); ++i)
        EXPECT_EQ(steps[i].bytes, BPlusTreeKvs::kInnerBytes);
    EXPECT_EQ(steps.back().bytes, BPlusTreeKvs::kLeafBytes);
}

TEST(Scan, DefaultScanCoversAllKeysSteps)
{
    mem::Placement p{2, 2'000, 256};
    HashTableKvs ht{2};
    ht.populate(p, 2'000);
    std::vector<IndexStep> steps;
    ht.scan(100, 10, steps);
    // At least one bucket read per key (dedup only collapses repeats).
    EXPECT_GE(steps.size(), 5u);
}

TEST(Scan, BPlusTreeChainIsCheaperThanRepeatedLookups)
{
    mem::Placement p{3, 30'000, 256};
    BPlusTreeKvs bpt{3};
    bpt.populate(p, 30'000);

    std::vector<IndexStep> chain, naive;
    bpt.scan(5'000, 64, chain);
    for (Key k = 5'000; k < 5'064; ++k) {
        std::vector<IndexStep> one;
        bpt.lookup(k, one);
        for (const auto &s : one)
            if (naive.empty() || naive.back().record != s.record)
                naive.push_back(s);
    }
    EXPECT_LT(chain.size(), naive.size())
        << "leaf chaining must beat per-key descents";
    EXPECT_GE(chain.size(), 3u);
}

TEST(Scan, BPlusTreeScanStaysInRange)
{
    mem::Placement p{2, 5'000, 256};
    BPlusTreeKvs bpt{2};
    bpt.populate(p, 5'000);
    std::vector<IndexStep> steps;
    bpt.scan(4'990, 64, steps); // clipped at the table end
    EXPECT_FALSE(steps.empty());
    bpt.scan(5'000, 10, steps); // fully out of range: no-op
}

TEST(StoreKindName, Labels)
{
    EXPECT_STREQ(storeKindName(StoreKind::HashTable), "HT");
    EXPECT_STREQ(storeKindName(StoreKind::Map), "Map");
    EXPECT_STREQ(storeKindName(StoreKind::BTree), "BTree");
    EXPECT_STREQ(storeKindName(StoreKind::BPlusTree), "B+Tree");
}

} // namespace
} // namespace hades::kvs
