#!/usr/bin/env bash
# Source hygiene checks that need no toolchain beyond POSIX, plus a
# clang-format dry run when the binary is available (CI installs it;
# dev containers may not have it, in which case that step is skipped).
#
# Usage: tools/check_format.sh [repo-root]
set -u

repo="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$repo" || exit 2

fail=0

sources=$(find src tests bench examples tools \
               -name '*.hh' -o -name '*.cc' -o -name '*.cpp' \
               -o -name '*.py' -o -name '*.sh' 2>/dev/null | sort)

# 1. No trailing whitespace.
if grep -n ' $' $sources /dev/null; then
    echo "check_format: trailing whitespace (above)" >&2
    fail=1
fi

# 2. No tabs in C++ sources (4-space indent per .clang-format).
cxx=$(printf '%s\n' "$sources" | grep -E '\.(hh|cc|cpp)$')
if grep -nP '\t' $cxx /dev/null; then
    echo "check_format: tab indentation in C++ source (above)" >&2
    fail=1
fi

# 3. Every file ends with exactly one newline.
for f in $sources; do
    if [ -s "$f" ] && [ -n "$(tail -c 1 "$f")" ]; then
        echo "$f: missing newline at end of file" >&2
        fail=1
    fi
done

# 4. clang-format dry run (skipped when not installed).
if command -v clang-format >/dev/null 2>&1; then
    if ! clang-format --dry-run --Werror $cxx; then
        echo "check_format: clang-format violations (above)" >&2
        fail=1
    fi
else
    echo "check_format: clang-format not found; dry run skipped"
fi

if [ "$fail" -eq 0 ]; then
    echo "check_format: OK ($(printf '%s\n' "$sources" | wc -l) files)"
fi
exit "$fail"
