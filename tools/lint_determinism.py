#!/usr/bin/env python3
"""Determinism lint for the HADES simulator sources.

The simulator's contract is bit-reproducible runs: the same RunSpec and
seed must produce the same simulated history on every platform and
standard-library implementation. This lint flags the source patterns
that historically break that contract:

  R1  uncontrolled randomness: rand()/srand(), std::random_device,
      standard mersenne/linear-congruential engines. All randomness
      must flow through the seeded Rng in src/common/rng.hh.
  R2  wall-clock time: time(), gettimeofday, clock_gettime,
      std::chrono clocks. Simulated time comes from the kernel;
      src/common/time.hh owns the only permitted conversions.
  R3  iteration over unordered containers: ranged-for over a variable
      declared in the same file as std::unordered_map/unordered_set.
      Hash-table iteration order is implementation-defined; if the loop
      body feeds a protocol decision (squash victim choice, message
      emission order) the run is no longer reproducible. Benign
      aggregate loops are annotated with `det-lint: ordered-ok`.
  R4  pointer-keyed ordering: std::map/std::set keyed by a pointer
      type, or a std::priority_queue of pointers, order by address,
      which varies run to run. The sharded kernel's lane heaps and
      cross-shard mailboxes must key on (when, rank, seq) -- never on
      the address of the event they carry.
  R5  thread identity as data: std::this_thread::get_id(),
      pthread_self(), gettid(), or a stored std::thread::id. Under
      the threaded shard executor the OS thread that runs a lane is
      arbitrary; any ordering or decision keyed on it diverges from
      the serial oracle. Lane identity comes from laneOf(node), not
      from the thread.
  R6  floating-point control-state accumulation: a float/double
      declaration, or a compound assignment feeding a float literal,
      whose identifier names smoothed control state (ewma / slo /
      health / admission tokens / retry budget). Control decisions --
      peer classification, hedging, shedding, quarantine -- must use
      fixed-point integer arithmetic (the Q8 EWMA in
      src/net/slo_tracker.hh) so a classification flips at the same
      sample on every platform, compiler, and FP-contraction mode.
      Derived *report* metrics (throughput, latency means) stay
      double: they are outputs, they never feed back into the
      simulation.

Suppression: append `// det-lint: ordered-ok` (any `det-lint:` marker)
to the flagged line or the line directly above it.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import pathlib
import re
import sys

# Files allowed to use the primitives they encapsulate.
ALLOWLIST = {
    "src/common/rng.hh": {"R1"},
    "src/common/time.hh": {"R2"},
}

SUPPRESS_RE = re.compile(r"det-lint:")

R1_RE = re.compile(
    r"\b(?:std::)?(?:rand|srand|rand_r|drand48|lrand48)\s*\(|"
    r"\bstd::random_device\b|\bstd::mt19937(?:_64)?\b|"
    r"\bstd::minstd_rand0?\b|\bstd::default_random_engine\b"
)

R2_RE = re.compile(
    r"\bstd::chrono::(?:system|steady|high_resolution)_clock\b|"
    r"\b(?:gettimeofday|clock_gettime|localtime|gmtime)\s*\(|"
    r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|&)"
)

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<"
)

# `name` of a member/variable declared with an unordered type: last
# identifier before ';', '=', '{' or '(' on the declaration statement.
DECL_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:;|=|\{|\()")

RANGED_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*\*?([A-Za-z_][\w.\->]*)\s*\)")

R4_RE = re.compile(
    r"\bstd::(?:map|set|multimap|multiset|priority_queue)\s*<\s*"
    r"(?:const\s+)?[A-Za-z_][\w:]*\s*\*"
)

R5_RE = re.compile(
    r"\bstd::this_thread::get_id\s*\(|\bpthread_self\s*\(|"
    r"(?<![\w:])gettid\s*\(|\bstd::thread::id\b"
)

# Identifiers that hold smoothed *control* state: anything the
# simulation branches on (SLO classification, admission, budgets).
R6_NAME = r"\w*(?:[Ee]wma|[Ss]lo[A-Z_]|SLO|[Hh]ealth[A-Z_]|" \
          r"[Rr]etry[Bb]udget|[Aa]dmission)\w*"

# A float/double declaration of control state...
R6_DECL_RE = re.compile(
    r"\b(?:float|double)\s+(?:\w+\s+)?%s\s*[;={]" % R6_NAME
)

# ...or accumulating into it with floating-point arithmetic.
R6_ACC_RE = re.compile(
    r"\b%s\s*(?:\+=|-=|\*=)\s*[^;]*(?:\d\.\d*\b|\bfloat\b|\bdouble\b)"
    % R6_NAME
)


def suppressed(lines, idx):
    """Marker on the flagged line or the line directly above it."""
    if SUPPRESS_RE.search(lines[idx]):
        return True
    return idx > 0 and SUPPRESS_RE.search(lines[idx - 1]) is not None


def strip_comments(line):
    """Drop // comments so commented-out code is not flagged (but keep
    the raw line for suppression-marker checks)."""
    return line.split("//", 1)[0]


def unordered_names(lines):
    """Names declared with an unordered container type in this file.

    Heuristic: the declaration may span lines (template arguments
    wrapped by the formatter), so scan a small window after the type
    for the declared name.
    """
    names = set()
    for i, line in enumerate(lines):
        code = strip_comments(line)
        if not UNORDERED_DECL_RE.search(code):
            continue
        if re.search(r"\busing\b|\btypedef\b", code):
            continue
        window = " ".join(
            strip_comments(l) for l in lines[i : i + 4]
        )
        m = UNORDERED_DECL_RE.search(window)
        tail = window[m.end():]
        # Skip past the template argument list to the declared name.
        depth = 1
        pos = 0
        while pos < len(tail) and depth > 0:
            if tail[pos] == "<":
                depth += 1
            elif tail[pos] == ">":
                depth -= 1
            pos += 1
        nm = DECL_NAME_RE.search(tail[pos:])
        if nm:
            names.add(nm.group(1))
    return names


def lint_file(path, rel, findings):
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    allowed = ALLOWLIST.get(rel, set())

    names = unordered_names(lines)

    for i, raw in enumerate(lines):
        code = strip_comments(raw)

        def report(rule, msg):
            if rule in allowed or suppressed(lines, i):
                return
            findings.append((rel, i + 1, rule, msg, raw.strip()))

        if R1_RE.search(code):
            report("R1", "uncontrolled randomness; use common/rng.hh")
        if R2_RE.search(code):
            report("R2", "wall-clock time; simulated time only")
        if R4_RE.search(code):
            report("R4", "pointer-keyed ordering "
                         "(orders by address)")
        if R5_RE.search(code):
            report("R5", "thread identity as data; lane identity "
                         "comes from laneOf(node), not the OS thread")
        if R6_DECL_RE.search(code) or R6_ACC_RE.search(code):
            report("R6", "floating-point accumulation in control "
                         "state; smoothed SLO/admission state must be "
                         "fixed-point (see the Q8 EWMA in "
                         "src/net/slo_tracker.hh)")
        m = RANGED_FOR_RE.search(code)
        if m:
            target = m.group(1)
            base = target.split(".")[-1].split("->")[-1]
            if base in names or UNORDERED_DECL_RE.search(code):
                report(
                    "R3",
                    "iteration over unordered container '%s'; order "
                    "is implementation-defined -- use an ordered "
                    "container or annotate det-lint: ordered-ok"
                    % target,
                )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("roots", nargs="*", default=["src"],
                    help="directories to scan (default: src)")
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of tools/)")
    args = ap.parse_args()

    repo = pathlib.Path(
        args.repo or pathlib.Path(__file__).resolve().parent.parent
    )
    roots = args.roots or ["src"]

    files = []
    for root in roots:
        base = repo / root
        if not base.is_dir():
            print("lint_determinism: no such directory: %s" % base,
                  file=sys.stderr)
            return 2
        files += sorted(base.rglob("*.hh"))
        files += sorted(base.rglob("*.cc"))

    findings = []
    for f in files:
        lint_file(f, f.relative_to(repo).as_posix(), findings)

    for rel, line, rule, msg, src in findings:
        print("%s:%d: [%s] %s\n    %s" % (rel, line, rule, msg, src))
    print(
        "lint_determinism: %d file(s) scanned, %d finding(s)"
        % (len(files), len(findings))
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
