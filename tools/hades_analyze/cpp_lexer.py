"""C++ tokenizer for the fallback frontend.

Produces a flat token stream with line numbers, plus the per-line
comment text (needed for suppression markers). This is not a general
C++ lexer -- it handles exactly what a well-formatted C++20 codebase
needs: line/block comments, string/char literals (including raw
strings), identifiers, numbers, and multi-character punctuation.
"""

from dataclasses import dataclass

PUNCT3 = ("<<=", ">>=", "...", "->*", "<=>")
PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)


@dataclass
class Tok:
    kind: str  # 'id', 'num', 'str', 'chr', 'punct'
    text: str
    line: int


def lex(text):
    """Tokenize @p text; returns (tokens, comments) where comments maps
    line -> concatenated comment text on that line."""
    toks = []
    comments = {}
    i = 0
    n = len(text)
    line = 1

    def note_comment(ln, s):
        comments[ln] = comments.get(ln, "") + s

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n:
            nxt = text[i + 1]
            if nxt == "/":
                j = text.find("\n", i)
                if j < 0:
                    j = n
                note_comment(line, text[i:j])
                i = j
                continue
            if nxt == "*":
                j = text.find("*/", i + 2)
                if j < 0:
                    j = n
                else:
                    j += 2
                chunk = text[i:j]
                note_comment(line, chunk)
                line += chunk.count("\n")
                i = j
                continue
        if c == '"' or (
            c == "R" and i + 1 < n and text[i + 1] == '"'
        ):
            if c == "R":
                # Raw string: R"delim( ... )delim"
                k = text.find("(", i + 2)
                delim = text[i + 2 : k]
                end = text.find(")" + delim + '"', k)
                if end < 0:
                    end = n
                else:
                    end += len(delim) + 2
                chunk = text[i:end]
                toks.append(Tok("str", chunk, line))
                line += chunk.count("\n")
                i = end
                continue
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == '"':
                    break
                if text[j] == "\n":
                    break  # unterminated; be forgiving
                j += 1
            toks.append(Tok("str", text[i : j + 1], line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "'":
                    break
                if text[j] == "\n":
                    break
                j += 1
            # Digit separators (1'000) never reach here: the number
            # lexer below consumes them inside the 'num' token.
            toks.append(Tok("chr", text[i : j + 1], line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (
                text[j].isalnum()
                or text[j] in "._'"
                or (
                    text[j] in "+-"
                    and text[j - 1] in "eEpP"
                )
            ):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        if c == "#":
            # Preprocessor line (with continuations): skip entirely.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    k = n
                if k > j and text[k - 1] == "\\":
                    line += 1
                    j = k + 1
                    continue
                break
            line += text.count("\n", i, k)
            i = k
            continue
        three = text[i : i + 3]
        if three in PUNCT3:
            toks.append(Tok("punct", three, line))
            i += 3
            continue
        two = text[i : i + 2]
        if two in PUNCT2:
            toks.append(Tok("punct", two, line))
            i += 2
            continue
        toks.append(Tok("punct", c, line))
        i += 1
    return toks, comments
