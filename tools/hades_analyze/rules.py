"""The hades-analyze rule implementations.

Each rule is a function `(Index, Suppressor) -> list[Finding]`; some
also publish extra machine-readable artifacts on the returned Report.

A note on A1 soundness: Network::refuseIfThreaded and
TxnEngine::ensureSerialForLockMode throw sim::SerialRerunNeeded, and
core::runOne then discards the ENTIRE threaded attempt and redoes the
spec on the deterministic executor (runner.cc). Gate coverage is
therefore sound run-wide and flow-insensitively: if executing a
function guarantees a gate fires somewhere in the same run, every
write of that run is discarded whenever the run was threaded. Coverage
consequently propagates both through synchronous callers and into
lambdas the covered code creates (the lambda only exists in runs where
its creator ran).
"""

import os
import re

from . import config as C
from .model import Finding
from .cpp_lexer import lex


# --- shared helpers ---------------------------------------------------------

class Suppressor:
    """Looks up `// hades-analyze: <rule>-ok (justification)` markers on
    a finding's line or the line above. A marker with no justification
    does not suppress -- it becomes its own finding (rule
    'suppression'). R3X/R4X additionally honor the pre-existing
    `det-lint: ordered-ok` markers."""

    DET_LINT_RULES = {"unordered-iter", "pointer-order"}

    def __init__(self, index):
        self.index = index
        self.used = set()       # (path, line, rule) markers consulted

    def find(self, path, line, rule):
        """Returns (suppressed, justification)."""
        for ln in (line, line - 1):
            text = self.index.comment_at(path, ln)
            if not text:
                continue
            for m in C.SUPPRESS_RE.finditer(text):
                if m.group(1) == rule:
                    just = (m.group(2) or "").strip()
                    if just:
                        self.used.add((path, ln, rule))
                        return True, just
            if rule in self.DET_LINT_RULES and C.DET_LINT_OK_RE.search(text):
                self.used.add((path, ln, rule))
                return True, "det-lint: ordered-ok"
        return False, ""

    def marker_findings(self):
        """Malformed markers: unknown rule name or missing mandatory
        justification."""
        out = []
        for (path, line), text in sorted(self.index.comments.items()):
            for m in C.SUPPRESS_RE.finditer(text):
                rule, just = m.group(1), (m.group(2) or "").strip()
                if rule not in C.ALL_RULES:
                    out.append(Finding(
                        "suppression", path, line,
                        "unknown hades-analyze rule '%s-ok'" % rule,
                        "valid rules: %s" % ", ".join(C.ALL_RULES)))
                elif not just:
                    out.append(Finding(
                        "suppression", path, line,
                        "suppression '%s-ok' has no justification" % rule,
                        "write `hades-analyze: %s-ok (<why this is "
                        "safe>)`" % rule))
        return out


def expr_components(expr):
    """Split a compact expression spelling into postfix-chain
    components: 'sys_.network.post' -> ['sys_', 'network', 'post'];
    calls and subscripts are tagged: 'st().x' -> ['st()', 'x'],
    'm_[k].y' -> ['m_[]', 'y']. '::'-qualified heads stay one
    component ('std::max')."""
    toks, _ = lex(expr)
    comps = []
    i = 0
    n = len(toks)
    depth = 0

    def skip_group(i, open_ch, close_ch):
        d = 0
        while i < n:
            t = toks[i].text
            if t == open_ch:
                d += 1
            elif t == close_ch:
                d -= 1
                if d == 0:
                    return i + 1
            i += 1
        return n

    cur = []
    while i < n:
        t = toks[i].text
        if t in (".", "->"):
            if cur:
                comps.append("".join(cur))
            cur = []
            i += 1
            continue
        if t == "(":
            i = skip_group(i, "(", ")")
            cur.append("()")
            continue
        if t == "[":
            i = skip_group(i, "[", "]")
            cur.append("[]")
            continue
        if t == "::":
            cur.append("::")
            i += 1
            continue
        if toks[i].kind == "id":
            cur.append(t)
            i += 1
            continue
        if t in ("*", "&", "!"):
            i += 1
            continue
        # Anything else (operators, commas) ends the chain of interest.
        if cur:
            comps.append("".join(cur))
            cur = []
        i += 1
    if cur:
        comps.append("".join(cur))
    return comps


class TypeResolver:
    """Best-effort static type resolution over expression spellings.
    Returns a type spelling or '' when unresolvable; rules must treat
    '' as 'no claim', never as 'clean'."""

    def __init__(self, index):
        self.index = index

    def visible_vars(self, fn):
        """Locals and params of @p fn plus, for lambdas, of the parent
        chain (captures)."""
        out = {}
        chain = [fn]
        seen = set()
        cur = fn
        while cur.is_lambda and cur.parent_func and \
                cur.parent_func not in seen:
            seen.add(cur.parent_func)
            parents = self.index.func_by_name.get(cur.parent_func, [])
            if not parents:
                break
            cur = parents[0]
            chain.append(cur)
        for f in reversed(chain):   # innermost shadows outermost
            for v in f.params:
                out[v.name] = v.type_spelling
            for v in f.locals:
                out[v.name] = v.type_spelling
        return out

    def class_of(self, type_spelling, depth=0):
        """ClassInfo for a type spelling, chasing aliases and peeling
        wrapper templates (shared_ptr/unique_ptr/reference_wrapper)."""
        if not type_spelling or depth > 4:
            return None
        t = self.index.resolve_alias(type_spelling).strip()
        t = re.sub(r"\b(const|mutable|static|constexpr|inline)\b", "", t)
        t = t.replace("&", " ").replace("*", " ").strip()
        m = re.match(r"^(?:std::)?(shared_ptr|unique_ptr|optional|"
                     r"reference_wrapper)\s*<(.*)>$", t)
        if m:
            return self.class_of(m.group(2), depth + 1)
        base = t.split("<")[0].strip().split("::")[-1]
        return self.index.classes.get(base)

    @staticmethod
    def template_args(type_spelling):
        """Top-level template argument spellings of 'T<a, b<c,d>, e>'."""
        lt = type_spelling.find("<")
        if lt < 0:
            return []
        gt = type_spelling.rfind(">")
        inner = type_spelling[lt + 1:gt if gt > lt else None]
        args = []
        depth = 0
        cur = []
        for ch in inner:
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
            if ch == "," and depth == 0:
                args.append("".join(cur).strip())
                cur = []
            else:
                cur.append(ch)
        if cur:
            args.append("".join(cur).strip())
        return args

    def element_type(self, container_spelling):
        """Value type yielded by subscripting a container."""
        t = self.index.resolve_alias(container_spelling)
        args = self.template_args(t)
        base = t.split("<")[0].split("::")[-1].strip()
        if base in ("map", "unordered_map") and len(args) >= 2:
            return args[1]
        if args:
            return args[0]
        return ""

    def resolve(self, fn, expr):
        """Type spelling of @p expr evaluated in @p fn, or ''."""
        comps = expr_components(expr)
        if not comps:
            return ""
        head = comps[0]
        name = head.replace("()", "").replace("[]", "")
        if "::" in name:        # std::..., enum constants: no claim
            return ""
        t = self.head_type(fn, name)
        if not t:
            return ""
        if head.endswith("()") and not self.is_var(fn, name):
            pass                # t already the return type
        if head.endswith("[]"):
            t = self.element_type(t)
        for comp in comps[1:]:
            t = self.step(t, comp)
            if not t:
                return ""
        return self.index.resolve_alias(self.unwrap_auto(t))

    def unwrap_auto(self, t):
        return t  # auto handled in head_type

    def is_var(self, fn, name):
        return name in self.visible_vars(fn)

    def head_type(self, fn, name, depth=0):
        if depth > 4:
            return ""
        vars_ = self.visible_vars(fn)
        if name in vars_:
            t = vars_[name]
            if t.startswith("auto="):
                # 'auto &m = map_;' -- resolve the initializer.
                return self.resolve(fn, t[len("auto="):])
            if t in ("auto", ""):
                return ""
            return t
        # Member of the enclosing class?
        if fn.cls:
            ci = self.index.classes.get(fn.cls) or \
                self.index.classes.get(fn.cls.split("::")[-1])
            if ci:
                for fld in ci.fields:
                    if fld.name == name:
                        return fld.type_spelling
                # Method return type.
                for cand in self.index.func_by_name.get(name, []):
                    if cand.cls == ci.name and cand.return_type:
                        return cand.return_type
        # Unique field name anywhere?
        cands = self.index.fields_by_name.get(name, [])
        if len(cands) == 1:
            return cands[0].type_spelling
        # Unique free/method function?
        fns = [f for f in self.index.func_by_name.get(name, [])
               if f.return_type]
        rts = {f.return_type for f in fns}
        if len(rts) == 1:
            return next(iter(rts))
        return ""

    def step(self, t, comp):
        """Type after applying chain component @p comp to a value of
        type @p t."""
        name = comp.replace("()", "").replace("[]", "")
        ci = self.class_of(t)
        nt = ""
        if ci:
            for fld in ci.fields:
                if fld.name == name:
                    nt = fld.type_spelling
                    break
            if not nt:
                for cand in self.index.func_by_name.get(name, []):
                    if cand.cls == ci.name and cand.return_type:
                        nt = cand.return_type
                        break
        if not nt:
            # Container protocol: .second on map iterations etc. --
            # no class info; give up.
            return ""
        if comp.endswith("[]"):
            nt = self.element_type(nt)
        return nt


# --- A1: lane escape --------------------------------------------------------

def compute_context(index):
    """Map function qualified name -> safety reason or '' (unsafe =
    potentially executes, and survives, in a threaded-lane context).
    Reasons: 'setup', 'uncertified-subsystem', 'gate-covered',
    'caller-covered'."""
    safe = {}
    by_short = {}
    for fn in index.functions:
        by_short.setdefault(fn.name.split("::")[-1], []).append(fn)
        reason = ""
        short_name = fn.name.split("::")[-1].split("<")[0]
        if fn.file.startswith(C.A1_UNCERTIFIED_DIRS):
            reason = "uncertified-subsystem"
        elif fn.is_ctor or C.A1_SETUP_FUNC_RE.match(short_name):
            reason = "setup"
        elif fn.file.startswith(C.A1_RUNNER_FILES) and \
                not fn.is_lambda and \
                short_name not in C.A1_RUNNER_EXCEPT:
            reason = "setup"
        else:
            for call in fn.calls:
                callee_short = expr_components(call.callee)
                callee_short = callee_short[-1].replace("()", "") \
                    if callee_short else ""
                if callee_short in C.A1_GATE_FUNCS:
                    reason = "gate-covered"
                    break
        if reason:
            safe[fn.name] = reason

    # Caller sets: short callee name -> caller function names.
    callers = {}
    for fn in index.functions:
        for call in fn.calls:
            comps = expr_components(call.callee)
            short = comps[-1].replace("()", "") if comps else ""
            if short:
                callers.setdefault(short, set()).add(fn.name)

    # Fixpoint: covered if the creator chain (lambdas) or every known
    # caller is covered. 'gated' and 'uncertified-subsystem' are
    # run-level arguments and flow through every edge, including
    # deferred ones (the callee/lambda only exists in runs where its
    # creator ran). 'setup' is a TIMING argument -- it must not flow
    # into deferred execution: not into lambdas (a callback created at
    # t=0 still runs in event context later) and not into coroutines
    # (spawning one from the prologue resumes it on a node lane).
    def is_setupish(reason):
        return reason.startswith("setup")

    fns_by_name = {}
    for fn in index.functions:
        fns_by_name.setdefault(fn.name, fn)
    changed = True
    while changed:
        changed = False
        for fn in index.functions:
            if fn.name in safe:
                continue
            if fn.is_lambda and fn.parent_func in safe and \
                    not is_setupish(safe[fn.parent_func]):
                safe[fn.name] = safe[fn.parent_func]
                changed = True
                continue
            short = fn.name.split("::")[-1]
            cs = callers.get(short, set()) - {fn.name}
            if cs and all(c in safe for c in cs):
                if any(is_setupish(safe[c]) for c in cs):
                    if fn.is_coro:
                        continue    # deferred: timing does not carry
                    safe[fn.name] = "setup-covered"
                else:
                    safe[fn.name] = "caller-covered"
                changed = True
    return safe


def owner_class_of_write(index, resolver, fn, w, target_classes):
    """Qualified class name owning the field written by @p w, or ''."""
    if w.cls:
        return w.cls
    cands = [f.cls for f in index.fields_by_name.get(w.field, [])]
    if len(set(cands)) == 1:
        return cands[0]
    comps = expr_components(w.expr)
    if len(comps) >= 2:
        # Resolve the receiver (everything but the final field).
        recv = w.expr
        cut = recv.rfind(w.field)
        if cut > 0:
            recv = recv[:cut].rstrip(".->")
        t = resolver.resolve(fn, recv)
        ci = resolver.class_of(t)
        if ci and ci.name in cands:
            return ci.name
    in_target = [c for c in set(cands) if c in target_classes]
    if len(in_target) == 1:
        return in_target[0]
    return ""


def rule_lane_escape(index, supp):
    """A1: inventory every mutable field of the engine/network/recovery
    classes and prove each write is lane-confined; unexplained writes
    are findings. Also returns the machine-readable inventory."""
    resolver = TypeResolver(index)
    context = compute_context(index)

    target_classes = {}
    for f in index.files:
        if not f.path.startswith(C.A1_TARGET_DIRS):
            continue
        for c in f.classes:
            target_classes[c.name] = c

    inventory = {}
    for cname in sorted(target_classes):
        ci = target_classes[cname]
        cls_supp, cls_just = supp.find(ci.file, ci.line, "lane-escape")
        ent = {}
        for fld in ci.fields:
            if fld.is_static or fld.is_const:
                classification = "const-or-static"
            else:
                classification = "unwritten"
            f_supp, f_just = supp.find(fld.file, fld.line, "lane-escape")
            ent[fld.name] = {
                "type": fld.type_spelling,
                "declared": "%s:%d" % (fld.file, fld.line),
                "classification": classification,
                "writes": [],
            }
            if cls_supp:
                ent[fld.name]["classification"] = "annotated-class"
                ent[fld.name]["justification"] = cls_just
            elif f_supp:
                ent[fld.name]["classification"] = "annotated-field"
                ent[fld.name]["justification"] = f_just
        inventory[cname] = ent

    findings = []
    fn_by_name = {fn.name: fn for fn in index.functions}
    for fn in index.functions:
        for w in fn.writes:
            owner = owner_class_of_write(index, resolver, fn, w,
                                         target_classes)
            if owner not in target_classes:
                continue
            ent = inventory[owner].get(w.field)
            if ent is None:
                continue    # write to something we did not model
            reason = context.get(fn.name, "")
            if not reason:
                head = expr_components(w.expr)
                head = head[0] if head else ""
                if head.replace("()", "") in C.A1_NODE_ACCESSORS and \
                        head.endswith("()"):
                    reason = "accessor:%s" % head
                elif w.index_expr and \
                        C.A1_NODE_INDEX_RE.search(w.index_expr):
                    reason = "lane-sharded[%s]" % w.index_expr
            site = {
                "at": "%s:%d" % (w.file, w.line),
                "func": w.func,
                "expr": w.expr,
                "context": reason or "ESCAPE",
            }
            ent["writes"].append(site)
            cur = ent["classification"]
            if cur in ("annotated-class", "annotated-field"):
                site["context"] = reason or cur
                continue
            if reason:
                if cur in ("unwritten", "const-or-static") or \
                        cur == reason:
                    ent["classification"] = reason
                else:
                    ent["classification"] = "mixed"
                continue
            ok, just = supp.find(w.file, w.line, "lane-escape")
            if ok:
                site["context"] = "annotated-site"
                site["justification"] = just
                if cur in ("unwritten",):
                    ent["classification"] = "annotated-site"
                continue
            ent["classification"] = "ESCAPE"
            findings.append(Finding(
                "lane-escape", w.file, w.line,
                "write to %s::%s from threaded-reachable context %s"
                % (owner.split("::")[-1], w.field, fn.name),
                "expr `%s`; not setup, not gate-covered, not "
                "per-node-indexed; annotate the write, field, or class "
                "with lane-escape-ok or route it through a per-node "
                "accessor" % w.expr))

    for cname, ent in inventory.items():
        for fname, rec in ent.items():
            rec["writes"].sort(key=lambda s: s["at"])
    return findings, inventory


# --- A2: verb totality and reliability --------------------------------------

def resolve_switch_enum(index, resolver, fn, sw):
    if sw.cond_enum:            # the clang frontend resolves the type
        return index.enums.get(sw.cond_enum.split("::")[-1])
    for ename in C.A2_TOTAL_ENUMS:
        if re.search(r"\b%s\b" % ename, sw.cond):
            return index.enums.get(ename)
    t = resolver.resolve(fn, sw.cond)
    if t:
        e = index.enums.get(t.split("<")[0].split("::")[-1].strip())
        if e:
            return e
    return None


def rule_verb_totality(index, supp):
    """A2a: switches over protocol enums must name every member (a
    default: clause does not excuse a hole -- new verbs must break
    loudly)."""
    resolver = TypeResolver(index)
    findings = []
    for fn in index.functions:
        for sw in fn.switches:
            e = resolve_switch_enum(index, resolver, fn, sw)
            if e is None or e.name.split("::")[-1] not in C.A2_TOTAL_ENUMS:
                continue
            covered = set()
            for lbl in sw.cases:
                covered.add(lbl.split("::")[-1].strip())
            missing = [m for m in e.members
                       if not C.A2_SENTINEL_RE.match(m)
                       and m not in covered]
            if not missing:
                continue
            ok, _ = supp.find(sw.file, sw.line, "verb-totality")
            if ok:
                continue
            findings.append(Finding(
                "verb-totality", sw.file, sw.line,
                "switch on %s misses: %s"
                % (e.name.split("::")[-1], ", ".join(missing)),
                "in %s%s; every enumerator needs an explicit case"
                % (fn.name,
                   " (default: present, which hides new verbs)"
                   if sw.has_default else "")))
    return findings


def post_verb(call):
    """MsgType verb named in a post/roundTrip call's arguments."""
    for a in call.args:
        m = re.search(r"\bMsgType::(\w+)", a)
        if m:
            return m.group(1)
    return ""


def rule_verb_reliability(index, supp):
    """A2b: every posted verb needs a registered delivery guarantee.
    roundTrip is NIC-reliable (RC retransmission); reliablePost is the
    Ack-confirmed software path; a bare Network::post is only legal for
    protocol replies (Ack) or inside the reliability wrapper itself --
    anything else must carry a verb-reliability-ok justification
    naming the covering retry."""
    findings = []
    verb_map = {}

    def note(verb, how, call):
        verb_map.setdefault(verb, []).append(
            {"via": how, "at": "%s:%d" % (call.file, call.line),
             "func": call.func})

    for fn in index.functions:
        short_chain = {fn.name.split("::")[-1]}
        cur = fn
        while cur.is_lambda and cur.parent_func:
            short_chain.add(cur.parent_func.split("::")[-1])
            parents = index.func_by_name.get(cur.parent_func, [])
            if not parents:
                break
            cur = parents[0]
        for call in fn.calls:
            comps = expr_components(call.callee)
            short = comps[-1].replace("()", "") if comps else ""
            verb = post_verb(call)
            if not verb:
                continue
            if short in ("roundTrip", "faultyRoundTrip"):
                note(verb, "roundTrip (NIC RC retransmission)", call)
                continue
            if short == "reliablePost":
                note(verb, "reliablePost (Ack-confirmed resend)", call)
                continue
            if short != "post":
                continue
            if verb in C.A2_NIC_VERBS:
                note(verb, "one-sided RDMA verb on an RC QP (NIC "
                     "retransmission)", call)
                continue
            if verb in C.A2_REPLY_VERBS:
                note(verb, "bare post (protocol reply; originator "
                     "owns the retry)", call)
                continue
            if short_chain & C.A2_RELIABILITY_WRAPPERS:
                note(verb, "bare post inside the reliability wrapper",
                     call)
                continue
            ok, just = supp.find(call.file, call.line,
                                 "verb-reliability")
            if ok:
                note(verb, "bare post, justified: %s" % just, call)
                continue
            note(verb, "bare post, UNJUSTIFIED", call)
            findings.append(Finding(
                "verb-reliability", call.file, call.line,
                "bare post of MsgType::%s has no registered retry "
                "path" % verb,
                "in %s; use reliablePost/roundTrip, or annotate "
                "verb-reliability-ok naming the covering "
                "timeout/resend" % fn.name))
    for v in verb_map.values():
        v.sort(key=lambda s: s["at"])
    return findings, verb_map


# --- A3: epoch fencing ------------------------------------------------------

def fn_has_epoch_guard(index, fn):
    """An epoch comparison in @p fn or any enclosing function (for
    lambdas, the creator chain: the guard dominating the lambda's
    creation fences everything the lambda does in that view)."""
    seen = set()
    cur = fn
    while cur is not None and cur.name not in seen:
        seen.add(cur.name)
        for cmp_ in cur.comparisons:
            if C.A3_EPOCH_RE.search(cmp_.lhs) or \
                    C.A3_EPOCH_RE.search(cmp_.rhs):
                return True
        if cur.is_lambda and cur.parent_func:
            parents = index.func_by_name.get(cur.parent_func, [])
            cur = parents[0] if parents else None
        else:
            cur = None
    return False


def rule_epoch_fence(index, supp):
    """A3: handlers mutating view-changed state (pendingApplies,
    decisionLog) must compare a configuration epoch first, unless they
    ARE the view-change/recovery machinery or run at setup."""
    findings = []
    for fn in index.functions:
        if C.A3_OWNER_CLASS_RE.search(fn.cls or fn.name):
            continue
        if fn.is_ctor:
            continue
        for w in fn.writes:
            if w.field not in C.A3_VIEW_STATE_FIELDS:
                continue
            if fn_has_epoch_guard(index, fn):
                continue
            ok, _ = supp.find(w.file, w.line, "epoch-fence")
            if ok:
                continue
            findings.append(Finding(
                "epoch-fence", w.file, w.line,
                "%s mutates view-changed state '%s' without an epoch "
                "guard" % (fn.name, w.field),
                "compare a configuration epoch (grant/cm/view) before "
                "mutating, or annotate epoch-fence-ok naming the "
                "fence that already covers delivery"))
    return findings


# --- A4: telemetry conservation ---------------------------------------------

def sink_blob(index, files):
    """Concatenated callee+arg+initializer spellings of every call and
    local in @p files -- the set of expressions the
    serializers/printers evaluate."""
    parts = []
    for fn in index.functions:
        if fn.file not in files:
            continue
        for call in fn.calls:
            parts.append(call.callee)
            parts.extend(call.args)
        for sw in fn.switches:
            parts.append(sw.cond)
        for rf in fn.ranged_fors:
            parts.append(rf.range_expr)
        for v in fn.locals:
            parts.append(v.init)
        for w in fn.writes:
            parts.append(w.expr)
    return "\n".join(parts)


def raw_text(index, path):
    full = os.path.join(getattr(index, "repo", "."), path)
    try:
        with open(full, "r", encoding="utf-8", errors="replace") as fh:
            return fh.read()
    except OSError:
        return ""


def rule_telemetry(index, supp):
    """A4: every RunResult/EngineStats field must reach the JSON
    emitter, and every scalar counter must also reach the CLI summary.
    A counter that is bumped but never reported is telemetry lost."""
    findings = []
    json_blob = sink_blob(index, {C.A4_JSON_FILE})
    cli_blob = sink_blob(index, {C.A4_CLI_FILE})
    # Derived names (JSON keys like "overhead_share") are spelled in
    # string literals the IR does not carry; check the raw source.
    json_raw = raw_text(index, C.A4_JSON_FILE)
    cli_raw = raw_text(index, C.A4_CLI_FILE)

    def check(ci, in_cli_too):
        for fld in ci.fields:
            if fld.is_static or fld.is_const:
                continue
            pat = re.compile(r"[.>]\s*%s\b" % re.escape(fld.name))
            derived = C.A4_DERIVED_STATS.get(fld.name)
            in_json = bool(pat.search(json_blob)) or bool(
                derived and derived in json_raw)
            is_counter = bool(
                C.A4_COUNTER_TYPE_RE.search(fld.type_spelling))
            # The CLI is a printer: fields feed printf arguments and
            # bare if-conditions the IR does not record, so a
            # word-boundary spelling match in the file IS the
            # conservation criterion there.
            in_cli = (bool(pat.search(cli_blob))
                      or bool(pat.search(cli_raw))
                      or bool(derived and derived in cli_raw))
            missing = []
            if not in_json:
                missing.append("JSON (%s)" % C.A4_JSON_FILE)
            if in_cli_too and is_counter and not in_cli:
                missing.append("CLI summary (%s)" % C.A4_CLI_FILE)
            if not missing:
                continue
            ok, _ = supp.find(fld.file, fld.line, "telemetry")
            if ok:
                continue
            findings.append(Finding(
                "telemetry", fld.file, fld.line,
                "%s::%s never reaches the %s"
                % (ci.name.split("::")[-1], fld.name,
                   " or ".join(missing)),
                "counters must be conserved end to end: struct -> "
                "runResultJson -> CLI; wire it through or annotate "
                "telemetry-ok"))

    for cname in (C.A4_RESULT_CLASS, C.A4_STATS_CLASS):
        ci = index.classes.get(cname)
        if ci is None:
            findings.append(Finding(
                "telemetry", "<config>", 0,
                "telemetry class %s not found in the tree" % cname))
            continue
        check(ci, in_cli_too=True)
    return findings


# --- R3X: unordered iteration (cross-file accurate) -------------------------

def rule_unordered_iter(index, supp):
    """det-lint R3, reimplemented over the IR: ranged-for over an
    unordered container, resolving the range expression through
    locals, parameters, fields declared in OTHER files, aliases, and
    accessor return types (the regex version only saw same-file
    declarations)."""
    resolver = TypeResolver(index)
    findings = []
    unresolved = 0
    for fn in index.functions:
        for rf in fn.ranged_fors:
            t = rf.range_type or resolver.resolve(fn, rf.range_expr)
            if not t:
                unresolved += 1
                continue
            if not C.R3_UNORDERED_RE.search(t):
                continue
            ok, _ = supp.find(rf.file, rf.line, "unordered-iter")
            if ok:
                continue
            findings.append(Finding(
                "unordered-iter", rf.file, rf.line,
                "ranged-for over unordered container `%s`"
                % rf.range_expr,
                "resolved type %s in %s; iteration order is not "
                "deterministic -- iterate a sorted copy or switch the "
                "container" % (t, fn.name)))
    return findings, unresolved


# --- R4X: pointer-keyed ordered containers ----------------------------------

def rule_pointer_order(index, supp):
    """det-lint R4, reimplemented over the IR: ordered containers
    keyed on raw pointers order by address, which varies run to run.
    Unlike the regex, this sees multi-line declarations, typedefs, and
    aliases -- and accepts an explicit custom comparator."""
    findings = []

    def check(name, type_spelling, path, line, where):
        t = index.resolve_alias(type_spelling)
        m = C.R4_ORDERED_TMPL_RE.search(t)
        if not m:
            return
        kind = m.group(1)
        args = TypeResolver.template_args(t[m.start():])
        if not args:
            return
        key = index.resolve_alias(args[0]).strip()
        if kind == "priority_queue":
            # Ordered by the comparator (arg 3) over T (arg 1).
            if len(args) >= 3:
                return      # custom comparator: author chose the order
            if not key.rstrip().endswith("*"):
                return
        else:
            cmp_pos = 2 if kind in ("map", "multimap") else 1
            if len(args) > cmp_pos:
                return      # custom comparator
            if not key.rstrip().endswith("*"):
                return
        ok, _ = supp.find(path, line, "pointer-order")
        if ok:
            return
        findings.append(Finding(
            "pointer-order", path, line,
            "%s `%s` is ordered by raw pointer value" % (where, name),
            "type %s; address order varies run to run -- key on a "
            "stable id or supply a deterministic comparator" % t))

    for f in index.files:
        for c in f.classes:
            for fld in c.fields:
                check(fld.name, fld.type_spelling, fld.file, fld.line,
                      "field")
        for v in f.file_vars:
            check(v.name, v.type_spelling, v.file, v.line, "variable")
        for a in f.aliases:
            check(a.name, a.target, a.file, a.line, "alias")
    for fn in index.functions:
        for v in fn.locals:
            if v.type_spelling.startswith("auto"):
                continue
            check(v.name, v.type_spelling, v.file, v.line, "local")
    return findings
