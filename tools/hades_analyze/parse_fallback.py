"""Built-in C++ structural parser producing the hades-analyze IR.

Used when clang is not installed (the dev container ships only g++).
It is a *structural* parser, not a full C++ frontend: it tracks
namespace/class/function nesting by brace matching, recognizes the
declaration forms this codebase actually uses, and extracts exactly the
facts the rules consume (fields, writes, calls, switches, ranged-fors,
comparisons, locals, lambdas). The clang frontend (parse_clang.py)
produces the same IR from real AST dumps; fixture tests assert both
frontends agree rule by rule.
"""

from .cpp_lexer import lex
from .model import (
    Alias, CallSite, ClassInfo, Comparison, EnumInfo, FieldInfo, FileIR,
    FunctionInfo, RangedFor, SwitchInfo, VarDecl, WriteSite,
)

# Container methods that mutate their receiver.
MUTATORS = {
    "push_back", "pop_back", "emplace_back", "push", "pop", "emplace",
    "insert", "erase", "clear", "resize", "assign", "fill",
    "push_front", "pop_front", "merge_from", "notify",
}
# NOTE: 'store' is deliberately absent -- in this codebase x.store(...)
# is overwhelmingly an accessor (ReplicaManager::store(node)), and the
# few std::atomic stores live in the kernel, outside the A1 targets.

KEYWORDS_NOT_CALLEES = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "catch", "new", "delete", "co_await", "co_return", "co_yield",
    "throw", "decltype", "assert", "always_assert", "static_assert",
    "defined", "noexcept", "alignas", "typeid",
}

TYPE_KEYWORDS = {
    "const", "constexpr", "static", "inline", "mutable", "volatile",
    "unsigned", "signed", "virtual", "explicit", "friend", "typename",
    "thread_local", "extern", "register",
}

CMP_OPS = {"==", "!=", "<=", ">="}


def no_space_before(t):
    return t in {
        ",", ";", ")", "]", "}", ">", "::", ".", "->", "++", "--", "(",
        "[", "<",
    }


def no_space_after(t):
    return t in {"(", "[", "{", "<", "::", ".", "->", "!", "~", "*", "&"}


def spell(toks):
    """Re-render a token slice as compact source text."""
    out = []
    prev = None
    for t in toks:
        if out and not no_space_before(t.text) and not (
            prev is not None and no_space_after(prev)
        ):
            out.append(" ")
        out.append(t.text)
        prev = t.text
    return "".join(out)


class Parser:
    def __init__(self, path, text):
        self.path = path
        self.toks, comments = lex(text)
        self.ir = FileIR(path=path, comments=comments)
        self.n = len(self.toks)

    # --- token helpers ----------------------------------------------------
    def tk(self, i):
        return self.toks[i] if 0 <= i < self.n else None

    def text(self, i):
        t = self.tk(i)
        return t.text if t else ""

    def match_forward(self, i, open_ch, close_ch):
        """Index just past the matching close for the open at @p i."""
        depth = 0
        while i < self.n:
            c = self.text(i)
            if c == open_ch:
                depth += 1
            elif c == close_ch:
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return self.n

    def skip_angles(self, i):
        """If toks[i] == '<' opening a template argument list, return
        the index just past the matching '>'."""
        depth = 0
        while i < self.n:
            c = self.text(i)
            if c == "<":
                depth += 1
            elif c in (">", ">>"):
                depth -= 2 if c == ">>" else 1
                if depth <= 0:
                    return i + 1
            elif c in (";", "{"):
                return i  # not a template list after all
            i += 1
        return self.n

    # --- top level --------------------------------------------------------
    def parse(self):
        self.parse_scope(0, self.n, ns=[], cls=None)
        return self.ir

    def parse_scope(self, i, end, ns, cls):
        """Parse declarations between token indices [i, end)."""
        while i < end:
            t = self.text(i)
            if t == ";" or t == "}":
                i += 1
                continue
            if t == "namespace":
                i = self.parse_namespace(i, ns, cls)
                continue
            if t == "enum":
                i = self.parse_enum(i, ns)
                continue
            if t in ("class", "struct") and self.is_class_def(i):
                i = self.parse_class(i, ns, cls)
                continue
            if t == "using":
                i = self.parse_using(i)
                continue
            if t == "typedef":
                i = self.parse_typedef(i)
                continue
            if t == "template":
                # Skip the parameter list; the templated entity follows.
                j = i + 1
                if self.text(j) == "<":
                    j = self.skip_angles(j)
                i = j
                continue
            if t in ("public", "private", "protected") and \
                    self.text(i + 1) == ":":
                i += 2
                continue
            if t in ("extern",) and self.text(i + 1).startswith('"'):
                i += 2
                continue
            i = self.parse_declaration(i, end, ns, cls)
        return i

    def parse_namespace(self, i, ns, cls):
        j = i + 1
        name_parts = []
        while self.text(j) not in ("{", ";") and j < self.n:
            if self.tk(j).kind == "id":
                name_parts.append(self.text(j))
            j += 1
        if self.text(j) != "{":
            return j + 1
        close = self.match_forward(j, "{", "}")
        self.parse_scope(j + 1, close - 1, ns + name_parts, cls)
        return close

    def parse_enum(self, i, ns):
        j = i + 1
        if self.text(j) in ("class", "struct"):
            scoped = True
            j += 1
        else:
            scoped = False
        if self.tk(j) is None or self.tk(j).kind != "id":
            return self.skip_statement(j)
        name = self.text(j)
        line = self.tk(j).line
        j += 1
        while self.text(j) not in ("{", ";") and j < self.n:
            j += 1
        if self.text(j) != "{":
            return j + 1  # forward declaration
        close = self.match_forward(j, "{", "}")
        members = []
        k = j + 1
        expect_name = True
        depth = 0
        while k < close - 1:
            c = self.text(k)
            if c in ("(", "[", "{"):
                depth += 1
            elif c in (")", "]", "}"):
                depth -= 1
            elif depth == 0:
                if c == ",":
                    expect_name = True
                elif expect_name and self.tk(k).kind == "id":
                    members.append(c)
                    expect_name = False
            k += 1
        self.ir.enums.append(EnumInfo(
            name="::".join(ns + [name]), members=members,
            file=self.path, line=line, scoped=scoped))
        return self.skip_statement(close)

    def is_class_def(self, i):
        """class/struct NAME [final] [: bases] { -- not a variable of
        elaborated type, not a forward declaration."""
        j = i + 1
        while self.text(j) == "alignas":
            j = self.match_forward(j + 1, "(", ")")
        if self.tk(j) is None or self.tk(j).kind != "id":
            return False
        j += 1
        if self.text(j) == "final":
            j += 1
        if self.text(j) == "{":
            return True
        if self.text(j) == ":":
            return True
        return False

    def parse_class(self, i, ns, cls):
        j = i + 1
        name = self.text(j)
        line = self.tk(j).line
        j += 1
        if self.text(j) == "final":
            j += 1
        bases = []
        if self.text(j) == ":":
            while self.text(j) != "{" and j < self.n:
                if self.tk(j).kind == "id" and self.text(j) not in (
                        "public", "private", "protected", "virtual"):
                    # collect id chain
                    chain = [self.text(j)]
                    k = j + 1
                    while self.text(k) == "::":
                        chain.append(self.text(k + 1))
                        k += 2
                    bases.append("::".join(chain))
                    j = k
                    if self.text(j) == "<":
                        j = self.skip_angles(j)
                    continue
                j += 1
        if self.text(j) != "{":
            return self.skip_statement(j)
        qual = "::".join(ns + ([cls.name.split("::")[-1]] if cls else [])
                         + [name]) if not cls else cls.name + "::" + name
        if cls is None:
            qual = "::".join(ns + [name])
        info = ClassInfo(name=qual, file=self.path, line=line, bases=bases)
        self.ir.classes.append(info)
        close = self.match_forward(j, "{", "}")
        self.parse_scope(j + 1, close - 1, ns, info)
        return self.skip_statement(close)

    def parse_using(self, i):
        # using NAME = TYPE;   |   using namespace X;   |   using X::y;
        j = i + 1
        if self.text(j) == "namespace":
            return self.skip_statement(j)
        if self.tk(j) is not None and self.tk(j).kind == "id" and \
                self.text(j + 1) == "=":
            name = self.text(j)
            line = self.tk(j).line
            k = j + 2
            start = k
            while self.text(k) != ";" and k < self.n:
                k += 1
            self.ir.aliases.append(Alias(
                name=name, target=spell(self.toks[start:k]),
                file=self.path, line=line))
            return k + 1
        return self.skip_statement(j)

    def parse_typedef(self, i):
        j = self.skip_statement(i)
        # typedef TYPE NAME; -- name is the last id before ';'
        k = j - 2
        if self.tk(k) is not None and self.tk(k).kind == "id":
            self.ir.aliases.append(Alias(
                name=self.text(k),
                target=spell(self.toks[i + 1:k]),
                file=self.path, line=self.tk(k).line))
        return j

    def skip_statement(self, i):
        """Advance past the next ';' at depth 0 (brace-aware)."""
        depth = 0
        while i < self.n:
            c = self.text(i)
            if c in ("(", "[", "{"):
                depth += 1
            elif c in (")", "]", "}"):
                depth -= 1
                if depth < 0:
                    return i + 1
            elif c == ";" and depth == 0:
                return i + 1
            i += 1
        return self.n

    # --- declarations: functions, fields, variables -----------------------
    def parse_declaration(self, i, end, ns, cls):
        """At a statement start inside a namespace or class: figure out
        whether this is a function definition, a function declaration,
        or a field/variable, and consume it."""
        j = i
        angle = 0
        last_id = None       # (index, text) of most recent id at depth 0
        name_idx = None
        terminator = None
        paren_after_name = None
        while j < end:
            c = self.text(j)
            k = self.tk(j).kind
            if c == "<" and last_id is not None and angle == 0 and \
                    self.looks_like_template(j):
                j = self.skip_angles(j)
                continue
            if c == "(":
                if last_id is not None and last_id[1] not in TYPE_KEYWORDS:
                    name_idx = last_id[0]
                    paren_after_name = j
                    break
                j = self.match_forward(j, "(", ")")
                continue
            if c == "[":
                if last_id is not None:
                    name_idx = last_id[0]
                    terminator = "["
                    break
                j = self.match_forward(j, "[", "]")
                continue
            if c in ("=", "{", ";"):
                if last_id is not None:
                    name_idx = last_id[0]
                terminator = c
                break
            if c == "operator":
                # Operator overloads: skip the whole definition.
                return self.skip_function_like(j)
            if k == "id" and c not in TYPE_KEYWORDS:
                last_id = (j, c)
            if c == "~":
                # Destructor definition/declaration.
                return self.skip_function_like(j)
            j += 1
        if name_idx is None:
            return self.skip_statement(i)

        if paren_after_name is not None:
            return self.parse_function(i, name_idx, paren_after_name,
                                       end, ns, cls)
        # Field or variable declaration.
        name_tok = self.tk(name_idx)
        type_spelling = spell(self.toks[i:name_idx])
        stmt_end = self.skip_statement(name_idx)
        is_static = "static" in {self.text(k) for k in range(i, name_idx)}
        is_const = any(self.text(k) in ("const", "constexpr")
                       for k in range(i, name_idx))
        if cls is not None:
            cls.fields.append(FieldInfo(
                name=name_tok.text, type_spelling=type_spelling,
                cls=cls.name, file=self.path, line=name_tok.line,
                is_static=is_static, is_const=is_const))
        else:
            self.ir.file_vars.append(VarDecl(
                name=name_tok.text, type_spelling=type_spelling,
                file=self.path, line=name_tok.line))
        return stmt_end

    def looks_like_template(self, j):
        """Heuristic: '<' right after an identifier inside a declaration
        is a template argument list if it closes before ';'/'{'."""
        return self.skip_angles(j) != j

    def skip_function_like(self, i):
        """Skip a definition/declaration we do not model (operators,
        destructors): consume to ';' or past a balanced '{...}'."""
        depth = 0
        while i < self.n:
            c = self.text(i)
            if c == "(":
                i = self.match_forward(i, "(", ")")
                continue
            if c == "{":
                return self.match_forward(i, "{", "}")
            if c == ";" and depth == 0:
                return i + 1
            i += 1
        return self.n

    def parse_function(self, start, name_idx, paren_idx, end, ns, cls):
        """A declarator 'NAME (' was found; decide declaration vs
        definition, record the function, and scan its body."""
        name_tok = self.tk(name_idx)
        # Qualified names in out-of-line definitions: A::B::name.
        parts = [name_tok.text]
        k = name_idx - 1
        while self.text(k) == "::" or (
            self.text(k) == ">" and False
        ):
            if self.tk(k - 1) is not None and self.tk(k - 1).kind == "id":
                parts.insert(0, self.text(k - 1))
                k -= 2
            else:
                break
        ret_type = spell(self.toks[start:k + 1]) if k + 1 > start else ""
        close_paren = self.match_forward(paren_idx, "(", ")")
        # After the parameter list: const/noexcept/override/-> T/: init.
        j = close_paren
        while j < self.n and self.text(j) not in ("{", ";", "="):
            if self.text(j) == "(":
                j = self.match_forward(j, "(", ")")
                continue
            j += 1
        if self.text(j) == "=":
            # '= default/delete/0;' -- a declaration.
            if cls is not None:
                cls.methods.append(name_tok.text)
            return self.skip_statement(j)
        if self.text(j) != "{":
            if cls is not None:
                cls.methods.append(name_tok.text)
            return j + 1
        body_close = self.match_forward(j, "{", "}")
        # NOTE: a function body is not followed by ';' -- do not
        # skip_statement past it or the next declaration is swallowed.

        cls_name = cls.name if cls is not None else (
            "::".join(ns + parts[:-1]) if len(parts) > 1 else "")
        qual = (cls_name + "::" + parts[-1]) if cls_name else \
            "::".join(ns + parts)
        fn = FunctionInfo(
            name=qual, cls=cls_name, file=self.path,
            line=name_tok.line,
            end_line=self.tk(body_close - 1).line
            if self.tk(body_close - 1) else name_tok.line,
            is_ctor=bool(parts[-1] == (cls_name.split("::")[-1]
                                       if cls_name else "")),
            return_type=ret_type)
        fn.params = self.parse_params(paren_idx + 1, close_paren - 1, qual)
        fn.is_coro = any(
            self.text(m) in ("co_await", "co_return", "co_yield")
            for m in range(j + 1, body_close - 1))
        self.ir.functions.append(fn)
        if cls is not None:
            cls.methods.append(name_tok.text)
        self.scan_body(j + 1, body_close - 1, fn)
        return body_close

    def parse_params(self, i, end, func_name):
        params = []
        depth = 0
        seg_start = i
        j = i
        while j <= end:
            c = self.text(j) if j < end else ","
            if j < end and c in ("(", "[", "{"):
                depth += 1
            elif j < end and c in (")", "]", "}"):
                depth -= 1
            elif j < end and c == "<" and self.looks_like_template(j):
                j = self.skip_angles(j) - 1
            elif (c == "," and depth == 0) or j == end:
                seg = self.toks[seg_start:j]
                # drop default argument
                for k, t in enumerate(seg):
                    if t.text == "=":
                        seg = seg[:k]
                        break
                if seg and seg[-1].kind == "id" and \
                        seg[-1].text not in TYPE_KEYWORDS and len(seg) > 1:
                    params.append(VarDecl(
                        name=seg[-1].text,
                        type_spelling=spell(seg[:-1]),
                        file=self.path, line=seg[-1].line,
                        func=func_name))
                seg_start = j + 1
            j += 1
        return params

    # --- function bodies --------------------------------------------------
    def scan_body(self, i, end, fn):
        """Extract writes/calls/switches/fors/comparisons/locals from a
        body token range; lambdas recurse into child FunctionInfo."""
        j = i
        stmt_start = True
        while j < end:
            c = self.text(j)
            k = self.tk(j).kind

            if c == "switch" and self.text(j + 1) == "(":
                j = self.scan_switch(j, end, fn)
                stmt_start = True
                continue
            if c == "for" and self.text(j + 1) == "(":
                j = self.scan_for(j, end, fn)
                stmt_start = True
                continue
            if c == "[" and self.text(j + 1) == "[":
                # [[attribute]]
                j = self.match_forward(j, "[", "]")
                continue
            if c == "[" and self.is_lambda_intro(j):
                j = self.scan_lambda(j, end, fn)
                stmt_start = False
                continue
            if stmt_start and k == "id" and self.is_local_decl(j, end):
                j = self.scan_local_decl(j, end, fn)
                stmt_start = False
                continue
            if k == "id" and c not in KEYWORDS_NOT_CALLEES and \
                    self.text(j + 1) in (
                        "(", ".", "->", "::", "[", "=", "+=", "-=",
                        "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
                        ">>=", "++", "--",
                    ):
                j2 = self.scan_postfix_chain(j, end, fn, stmt_start)
                stmt_start = False
                j = j2
                continue
            if c in ("++", "--") and self.tk(j + 1) is not None and \
                    self.tk(j + 1).kind == "id":
                # prefix increment of a plain identifier / chain
                chain_end = self.chain_extent(j + 1, end)
                self.record_write(self.toks[j + 1:chain_end], "modify",
                                  fn, self.tk(j).line)
                j = chain_end
                stmt_start = False
                continue
            if c in CMP_OPS:
                self.record_comparison(j, end, fn)
                j += 1
                stmt_start = False
                continue
            if c in (";", "{", "}", ":"):
                stmt_start = True
                j += 1
                continue
            stmt_start = False
            j += 1

    def is_lambda_intro(self, j):
        prev = self.tk(j - 1)
        if prev is None:
            return True
        if prev.kind in ("id", "num", "str"):
            return False
        if prev.text in (")", "]"):
            return False
        return True

    def scan_lambda(self, j, end, fn):
        cap_close = self.match_forward(j, "[", "]")
        k = cap_close
        params_range = None
        if self.text(k) == "(":
            pclose = self.match_forward(k, "(", ")")
            params_range = (k + 1, pclose - 1)
            k = pclose
        while k < end and self.text(k) not in ("{", ";", ")", ","):
            if self.text(k) == "(":
                k = self.match_forward(k, "(", ")")
                continue
            k += 1
        if self.text(k) != "{":
            return cap_close  # not a lambda body (e.g. attribute)
        body_close = self.match_forward(k, "{", "}")
        name = "%s::<lambda:%d>" % (fn.name, self.tk(j).line)
        child = FunctionInfo(
            name=name, cls=fn.cls, file=self.path, line=self.tk(j).line,
            end_line=self.tk(body_close - 1).line,
            is_lambda=True, parent_func=fn.name)
        if params_range:
            child.params = self.parse_params(params_range[0],
                                             params_range[1] + 1, name)
        self.ir.functions.append(child)
        self.scan_body(k + 1, body_close - 1, child)
        return body_close

    def scan_switch(self, j, end, fn):
        cond_close = self.match_forward(j + 1, "(", ")")
        cond = spell(self.toks[j + 2:cond_close - 1])
        line = self.tk(j).line
        sw = SwitchInfo(cond=cond, file=self.path, line=line, func=fn.name)
        k = cond_close
        if self.text(k) != "{":
            return cond_close
        body_close = self.match_forward(k, "{", "}")
        m = k + 1
        depth = 0
        while m < body_close - 1:
            c = self.text(m)
            if c in ("(", "[", "{"):
                depth += 1
            elif c in (")", "]", "}"):
                depth -= 1
            elif depth == 0 and c == "case":
                lbl_end = m + 1
                while self.text(lbl_end) != ":" and lbl_end < body_close:
                    lbl_end += 1
                sw.cases.append(spell(self.toks[m + 1:lbl_end]))
                m = lbl_end
            elif depth == 0 and c == "default" and self.text(m + 1) == ":":
                sw.has_default = True
            m += 1
        fn.switches.append(sw)
        # The switch body may contain nested constructs; scan it too.
        self.scan_body(k + 1, body_close - 1, fn)
        return body_close

    def scan_for(self, j, end, fn):
        hdr_close = self.match_forward(j + 1, "(", ")")
        # Ranged-for: a ':' at depth 0 inside the header, no ';'.
        depth = 0
        colon = None
        has_semi = False
        m = j + 2
        while m < hdr_close - 1:
            c = self.text(m)
            if c in ("(", "[", "{"):
                depth += 1
            elif c in (")", "]", "}"):
                depth -= 1
            elif depth == 0:
                if c == ";":
                    has_semi = True
                    break
                if c == ":" and colon is None:
                    colon = m
            m += 1
        if colon is not None and not has_semi:
            fn.ranged_fors.append(RangedFor(
                range_expr=spell(self.toks[colon + 1:hdr_close - 1]),
                file=self.path, line=self.tk(j).line, func=fn.name))
            # The loop variable is a local; record it for resolution.
            decl = self.toks[j + 2:colon]
            if decl and decl[-1].kind == "id":
                fn.locals.append(VarDecl(
                    name=decl[-1].text,
                    type_spelling=spell(decl[:-1]),
                    file=self.path, line=decl[-1].line, func=fn.name))
        else:
            # Classic for: scan the header for writes (i += 1 etc.).
            self.scan_body(j + 2, hdr_close - 1, fn)
        return hdr_close

    def find_decl_name(self, j, end):
        """If [j, end) starts with 'TYPE name', return the token index
        of the declared name, else None. TYPE is an id chain with
        optional ::, template args, cv-qualifiers, and * & declarators.
        """
        k = j
        if self.text(k) in ("return", "delete", "else", "do", "break",
                            "continue", "goto", "case", "default",
                            "throw", "co_return", "co_await", "new"):
            return None
        type_seen = False   # a complete type chain has been read
        prev = None
        while k < end:
            c = self.text(k)
            kind = self.tk(k).kind
            if kind == "id" and c == "auto":
                type_seen = True
                prev = "id"
                k += 1
                continue
            if kind == "id" and c in TYPE_KEYWORDS:
                prev = "kw"
                k += 1
                continue
            if kind == "id" and c in KEYWORDS_NOT_CALLEES:
                return None
            if kind == "id":
                if type_seen and prev in ("id", "ref", "close_angle"):
                    after = self.text(k + 1)
                    if after in ("=", ";", "{", "(", "[", ",", ":"):
                        return k
                    return None
                type_seen = True
                prev = "id"
                k += 1
                continue
            if c == "::":
                prev = "colons"
                k += 1
                continue
            if c == "<" and prev in ("id", "close_angle"):
                nk = self.skip_angles(k)
                if nk == k:
                    return None
                k = nk
                prev = "close_angle"
                continue
            if c in ("*", "&", "&&") and type_seen:
                prev = "ref"
                k += 1
                continue
            return None
        return None

    def is_local_decl(self, j, end):
        return self.find_decl_name(j, end) is not None

    def scan_local_decl(self, j, end, fn):
        """Record 'TYPE name [= init];' locals (auto keeps its init
        spelling so R3X can resolve aliases like 'auto &m = map_;')."""
        stmt_end = j
        depth = 0
        while stmt_end < end:
            c = self.text(stmt_end)
            if c in ("(", "[", "{"):
                depth += 1
            elif c in (")", "]", "}"):
                depth -= 1
            elif c == ";" and depth == 0:
                break
            stmt_end += 1
        # find the declared name
        name_idx = self.find_decl_name(j, stmt_end)
        name_tok = self.tk(name_idx) if name_idx is not None else None
        k = name_idx if name_idx is not None else j
        if name_tok is None:
            # fall through: treat as an expression statement
            self.scan_expression_stmt(j, stmt_end, fn)
            return stmt_end
        type_spelling = spell(self.toks[j:k])
        init = ""
        for m in range(k, stmt_end):
            if self.text(m) == "=":
                init = spell(self.toks[m + 1:stmt_end])
                break
        if "auto" in type_spelling.split() or type_spelling == "auto" or \
                type_spelling.startswith("auto"):
            type_spelling = "auto=" + init if init else "auto"
        fn.locals.append(VarDecl(
            name=name_tok.text, type_spelling=type_spelling, init=init,
            file=self.path, line=name_tok.line, func=fn.name))
        # The initializer may contain calls/lambdas/writes: scan it.
        self.scan_body(k + 1, stmt_end, fn)
        return stmt_end

    def scan_expression_stmt(self, j, stmt_end, fn):
        self.scan_body(j, stmt_end, fn)

    def chain_extent(self, j, end):
        """Extent of a postfix chain starting at id @p j:
        id (::id)* ( '.' id | '->' id | '[' ... ']' | '(' ... ')' )*"""
        k = j + 1
        while k < end:
            c = self.text(k)
            if c == "::" and self.tk(k + 1) is not None and \
                    self.tk(k + 1).kind == "id":
                k += 2
                continue
            if c in (".", "->") and self.tk(k + 1) is not None and \
                    self.tk(k + 1).kind == "id":
                k += 2
                continue
            if c == "[":
                k = self.match_forward(k, "[", "]")
                continue
            if c == "(":
                k = self.match_forward(k, "(", ")")
                continue
            break
        return k

    def scan_postfix_chain(self, j, end, fn, stmt_start):
        """At an identifier that begins a postfix chain: record calls,
        member mutations, assignments, and recurse into call args."""
        chain_end = self.chain_extent(j, end)
        chain = self.toks[j:chain_end]
        line = self.tk(j).line
        after = self.text(chain_end)

        # Record calls inside the chain (each '(' group).
        self.record_chain_calls(j, chain_end, fn)

        if after in ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                     "^=", "<<=", ">>="):
            if after == "=" and self.text(chain_end + 1) == "=":
                pass  # '==' split weirdly; lexer emits '==' whole
            else:
                self.record_write(
                    chain, "assign" if after == "=" else "modify",
                    fn, line)
                return chain_end + 1
        if after in ("++", "--"):
            self.record_write(chain, "modify", fn, line)
            return chain_end + 1
        return chain_end

    def record_chain_calls(self, j, chain_end, fn):
        """Within a postfix chain, emit CallSite for every call group
        and WriteSite for mutating member calls; recurse into args."""
        k = j
        seg_start = j
        last_member_start = j
        while k < chain_end:
            c = self.text(k)
            if c == "(":
                close = self.match_forward(k, "(", ")")
                callee_toks = self.toks[seg_start:k]
                callee = spell(callee_toks)
                args = self.split_args(k + 1, close - 1)
                fn.calls.append(CallSite(
                    callee=callee, args=args, file=self.path,
                    line=self.tk(k).line, func=fn.name))
                # Mutating member call => a write to the receiver.
                member = callee_toks[-1].text if callee_toks else ""
                if member in MUTATORS and len(callee_toks) >= 3:
                    recv = callee_toks[:-2]  # drop '.member'
                    self.record_write(recv, "call", fn,
                                      self.tk(k).line, via=member)
                # Scan arguments for nested chains/lambdas/writes.
                self.scan_body(k + 1, close - 1, fn)
                k = close
                continue
            if c == "[":
                k = self.match_forward(k, "[", "]")
                continue
            if c in (".", "->"):
                last_member_start = k + 1
                k += 1
                continue
            k += 1
        return chain_end

    def split_args(self, i, end):
        args = []
        depth = 0
        seg = i
        j = i
        while j <= end:
            c = self.text(j) if j < end else ","
            if j < end and c in ("(", "[", "{"):
                depth += 1
            elif j < end and c in (")", "]", "}"):
                depth -= 1
            elif (c == "," and depth == 0) or j == end:
                if j > seg:
                    args.append(spell(self.toks[seg:j]))
                seg = j + 1
            j += 1
        return args

    def record_write(self, chain_toks, kind, fn, line, via=""):
        if not chain_toks:
            return
        # Field = last id in the chain before any trailing call/index.
        field_name = None
        idx_expr = ""
        k = len(chain_toks) - 1
        while k >= 0:
            t = chain_toks[k]
            if t.kind == "id":
                field_name = t.text
                break
            if t.text == "]":
                # capture the subscript expression
                depth = 0
                m = k
                while m >= 0:
                    if chain_toks[m].text == "]":
                        depth += 1
                    elif chain_toks[m].text == "[":
                        depth -= 1
                        if depth == 0:
                            break
                    m -= 1
                idx_expr = spell(chain_toks[m + 1:k]) or idx_expr
                k = m - 1
                continue
            if t.text == ")":
                depth = 0
                m = k
                while m >= 0:
                    if chain_toks[m].text == ")":
                        depth += 1
                    elif chain_toks[m].text == "(":
                        depth -= 1
                        if depth == 0:
                            break
                    m -= 1
                k = m - 1
                continue
            k -= 1
        if field_name is None:
            return
        # Distinguish locals from fields: single-component plain ids
        # that match a local/param are not field writes.
        names_in_chain = [t.text for t in chain_toks if t.kind == "id"]
        if names_in_chain and names_in_chain[0] == field_name:
            local_names = {v.name for v in fn.locals} | \
                {p.name for p in fn.params}
            if field_name in local_names and len(names_in_chain) == 1:
                return
        cls = fn.cls if len(names_in_chain) == 1 else ""
        if names_in_chain and names_in_chain[0] == "this":
            cls = fn.cls
        fn.writes.append(WriteSite(
            field=field_name, cls=cls, expr=spell(chain_toks),
            kind=kind, index_expr=idx_expr, via_method=via,
            file=self.path, line=line, func=fn.name))

    def record_comparison(self, j, end, fn):
        # lhs: walk backwards over a postfix chain; rhs: forward.
        lhs_start = j - 1
        depth = 0
        while lhs_start >= 0:
            c = self.text(lhs_start)
            if c in (")", "]"):
                depth += 1
            elif c in ("(", "["):
                depth -= 1
                if depth < 0:
                    break
            elif depth == 0 and self.tk(lhs_start).kind not in \
                    ("id", "num") and c not in ("::", ".", "->"):
                break
            lhs_start -= 1
        lhs = spell(self.toks[lhs_start + 1:j])
        rhs_end = self.chain_extent(j + 1, end) \
            if self.tk(j + 1) is not None and \
            self.tk(j + 1).kind == "id" else j + 2
        rhs = spell(self.toks[j + 1:min(rhs_end, end)])
        if lhs or rhs:
            fn.comparisons.append(Comparison(
                lhs=lhs, rhs=rhs, file=self.path,
                line=self.tk(j).line, func=fn.name))


def parse_file(path, rel, text=None):
    if text is None:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    return Parser(rel, text).parse()
