"""hades-analyze driver: frontend selection, rule execution, reports.

Usage (from the repo root):
    python3 -m tools.hades_analyze --repo . [--frontend auto|clang|fallback]
        [--json out.json] [--inventory lane_escape_inventory.json]
        [--ast-cache build/hades-analyze-cache] [--rules r1,r2,...]

Exit status: 0 when no unsuppressed finding, 1 otherwise, 2 on usage
or environment errors.
"""

import argparse
import json
import os
import shutil
import sys

from . import config as C
from .model import Index
from . import parse_fallback
from . import parse_clang
from . import rules as R


def collect_sources(repo):
    """Repo-relative posix paths of every file the analysis reads."""
    out = []
    for root in ("src",):
        base = os.path.join(repo, root)
        for dirpath, _dirnames, filenames in os.walk(base):
            for fname in sorted(filenames):
                if fname.endswith((".hh", ".cc", ".hpp", ".cpp", ".h")):
                    full = os.path.join(dirpath, fname)
                    out.append(os.path.relpath(full, repo)
                               .replace(os.sep, "/"))
    cli = C.A4_CLI_FILE
    if os.path.exists(os.path.join(repo, cli)):
        out.append(cli)
    return sorted(out)


def pick_frontend(choice, repo):
    if choice == "fallback":
        return "fallback"
    have_clang = shutil.which("clang++") is not None
    have_db = os.path.exists(
        os.path.join(repo, "build", "compile_commands.json"))
    if choice == "clang":
        if not have_clang:
            raise SystemExit("hades-analyze: --frontend=clang but no "
                             "clang++ on PATH")
        return "clang"
    return "clang" if (have_clang and have_db) else "fallback"


def build_index(repo, frontend, paths, cache_dir):
    files = []
    for rel in paths:
        full = os.path.join(repo, rel)
        if frontend == "clang":
            ir = parse_clang.parse_file(full, rel, repo=repo,
                                        cache_dir=cache_dir)
            if ir is None:       # not in the compile db (headers):
                ir = parse_fallback.parse_file(full, rel)
        else:
            ir = parse_fallback.parse_file(full, rel)
        files.append(ir)
    idx = Index(files)
    idx.repo = repo
    return idx


def run_rules(index, selected):
    supp = R.Suppressor(index)
    findings = []
    report = {"verbs": {}, "inventory": {}, "unresolved_ranges": 0}

    def want(rule):
        return not selected or rule in selected

    if want("lane-escape"):
        f, inv = R.rule_lane_escape(index, supp)
        findings += f
        report["inventory"] = inv
    if want("verb-totality"):
        findings += R.rule_verb_totality(index, supp)
    if want("verb-reliability"):
        f, verbs = R.rule_verb_reliability(index, supp)
        findings += f
        report["verbs"] = verbs
    if want("epoch-fence"):
        findings += R.rule_epoch_fence(index, supp)
    if want("telemetry"):
        findings += R.rule_telemetry(index, supp)
    if want("unordered-iter"):
        f, unresolved = R.rule_unordered_iter(index, supp)
        findings += f
        report["unresolved_ranges"] = unresolved
    if want("pointer-order"):
        findings += R.rule_pointer_order(index, supp)
    if want("suppression"):
        findings += supp.marker_findings()

    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings, report


def main(argv=None):
    ap = argparse.ArgumentParser(prog="hades-analyze")
    ap.add_argument("--repo", default=".")
    ap.add_argument("--frontend", default="auto",
                    choices=("auto", "clang", "fallback"))
    ap.add_argument("--json", help="write findings + verb map as JSON")
    ap.add_argument("--inventory",
                    help="write the lane-escape inventory JSON")
    ap.add_argument("--ast-cache",
                    help="directory for sha256-keyed clang AST dumps")
    ap.add_argument("--rules",
                    help="comma-separated subset of rules to run")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    repo = os.path.abspath(args.repo)
    selected = set()
    if args.rules:
        selected = {r.strip() for r in args.rules.split(",") if r.strip()}
        bad = selected - set(C.ALL_RULES)
        if bad:
            print("hades-analyze: unknown rules: %s" % ", ".join(bad),
                  file=sys.stderr)
            return 2

    frontend = pick_frontend(args.frontend, repo)
    paths = collect_sources(repo)
    index = build_index(repo, frontend, paths, args.ast_cache)
    findings, report = run_rules(index, selected)

    if not args.quiet:
        print("hades-analyze: frontend=%s files=%d" %
              (frontend, len(paths)))
        for f in findings:
            print("%s:%d: [%s] %s" % (f.file, f.line, f.rule, f.message))
            if f.detail:
                print("    %s" % f.detail)
        n_escape = sum(
            1 for c in report["inventory"].values()
            for rec in c.values() if rec["classification"] == "ESCAPE")
        print("hades-analyze: %d finding(s); lane inventory: %d "
              "class(es), %d escape(s)"
              % (len(findings), len(report["inventory"]), n_escape))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({
                "frontend": frontend,
                "findings": [vars(f) for f in findings],
                "verbs": report["verbs"],
                "unresolved_ranges": report["unresolved_ranges"],
            }, fh, indent=1, sort_keys=True)
            fh.write("\n")
    if args.inventory:
        with open(args.inventory, "w", encoding="utf-8") as fh:
            json.dump({
                "_comment": [
                    "hades-analyze lane-escape inventory: every mutable",
                    "field of the protocol/net/recovery/replica classes",
                    "and how each write is lane-confined. Regenerate:",
                    "python3 -m tools.hades_analyze --repo . "
                    "--inventory tools/hades_analyze/"
                    "lane_escape_inventory.json",
                ],
                "classes": report["inventory"],
            }, fh, indent=1, sort_keys=True)
            fh.write("\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
