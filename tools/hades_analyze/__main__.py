from .driver import main
import sys

sys.exit(main())
