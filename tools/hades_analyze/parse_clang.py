"""clang AST JSON frontend.

Parses `clang++ -Xclang -ast-dump=json -fsyntax-only` output into the
shared IR, reusing the compile flags from build/compile_commands.json
so every file is parsed exactly as it is built. Dumps are cached under
--ast-cache keyed on sha256(source + flags + clang version); CI keys
its cache restore on the same hashes.

The dump is a delta-encoded document: `loc` objects omit `line` and
`file` when unchanged from the previous location in serialization
order, so the walker threads (cur_file, cur_line) state through the
whole traversal and only materializes IR for nodes spelled in the
translation unit's own file.
"""

import hashlib
import json
import os
import subprocess

from .model import (
    Alias, CallSite, ClassInfo, Comparison, EnumInfo, FieldInfo, FileIR,
    FunctionInfo, RangedFor, SwitchInfo, VarDecl, WriteSite,
)
from .parse_fallback import MUTATORS

_COMPILE_DB = {}
_CLANG_VERSION = None

CMP_OPS = {"==", "!=", "<=", ">="}
ASSIGN_OPS = {"=": "assign", "+=": "modify", "-=": "modify",
              "*=": "modify", "/=": "modify", "%=": "modify",
              "&=": "modify", "|=": "modify", "^=": "modify",
              "<<=": "modify", ">>=": "modify"}


def load_compile_db(repo):
    if repo in _COMPILE_DB:
        return _COMPILE_DB[repo]
    db = {}
    path = os.path.join(repo, "build", "compile_commands.json")
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            for ent in json.load(fh):
                src = os.path.normpath(os.path.join(
                    ent.get("directory", "."), ent["file"]))
                db[src] = ent
    _COMPILE_DB[repo] = db
    return db


def clang_version():
    global _CLANG_VERSION
    if _CLANG_VERSION is None:
        try:
            _CLANG_VERSION = subprocess.run(
                ["clang++", "--version"], capture_output=True,
                text=True, check=True).stdout.splitlines()[0]
        except (OSError, subprocess.CalledProcessError):
            _CLANG_VERSION = "unknown"
    return _CLANG_VERSION


def dump_args(entry):
    """The compile command with -c/-o stripped and the AST dump
    switches appended."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        import shlex
        argv = shlex.split(entry["command"])
    out = ["clang++"]
    skip = False
    for a in argv[1:]:
        if skip:
            skip = False
            continue
        if a in ("-c",):
            continue
        if a == "-o":
            skip = True
            continue
        out.append(a)
    out += ["-fsyntax-only", "-Wno-everything",
            "-Xclang", "-ast-dump=json"]
    return out


def cached_dump(full, rel, repo, cache_dir):
    """AST JSON for @p full, via the sha256-keyed cache."""
    db = load_compile_db(repo)
    entry = db.get(os.path.normpath(full))
    if entry is None:
        return None
    args = dump_args(entry)
    with open(full, "rb") as fh:
        src = fh.read()
    key = hashlib.sha256(
        src + "\0".join(args).encode() + clang_version().encode()
    ).hexdigest()
    cache_path = None
    if cache_dir:
        os.makedirs(cache_dir, exist_ok=True)
        cache_path = os.path.join(
            cache_dir, "%s.%s.json" % (os.path.basename(rel), key[:16]))
        if os.path.exists(cache_path):
            with open(cache_path, "r", encoding="utf-8") as fh:
                return json.load(fh)
    proc = subprocess.run(args, capture_output=True, text=True,
                          cwd=entry.get("directory", repo))
    if proc.returncode != 0 or not proc.stdout:
        raise RuntimeError("clang AST dump failed for %s:\n%s"
                           % (rel, proc.stderr[-2000:]))
    if cache_path:
        with open(cache_path, "w", encoding="utf-8") as fh:
            fh.write(proc.stdout)
    return json.loads(proc.stdout)


class Walker:
    def __init__(self, rel, full):
        self.rel = rel
        self.full = os.path.normpath(full)
        self.ir = FileIR(path=rel)
        self.cur_file = ""
        self.cur_line = 0
        self.ns = []
        self.cls_stack = []
        self.decl_ctx = {}      # node id -> qualified class name

    # --- location state ---------------------------------------------------
    def advance_loc(self, node):
        loc = node.get("loc") or {}
        for key in ("spellingLoc", "expansionLoc"):
            if key in loc:
                loc = loc[key]
                break
        if "file" in loc:
            self.cur_file = os.path.normpath(loc["file"])
        if "line" in loc:
            self.cur_line = loc["line"]
        rng = node.get("range", {}).get("begin", {})
        for key in ("spellingLoc", "expansionLoc"):
            if key in rng:
                rng = rng[key]
                break
        if "file" in rng:
            self.cur_file = os.path.normpath(rng["file"])
        if "line" in rng:
            self.cur_line = rng["line"]

    def in_main_file(self):
        return self.cur_file.endswith(self.rel) or \
            self.cur_file == self.full or self.cur_file == ""

    # --- rendering expressions back to spellings ---------------------------
    def render(self, node):
        if node is None:
            return ""
        kind = node.get("kind", "")
        inner = [n for n in node.get("inner", []) if n]
        if kind in ("ImplicitCastExpr", "ParenExpr", "ExprWithCleanups",
                    "ConstantExpr", "MaterializeTemporaryExpr",
                    "CXXBindTemporaryExpr", "FullComment"):
            return self.render(inner[0]) if inner else ""
        if kind == "DeclRefExpr":
            ref = node.get("referencedDecl", {})
            name = ref.get("name", "")
            if ref.get("kind") == "EnumConstantDecl":
                qt = ref.get("type", {}).get("qualType", "")
                enum_short = qt.split("::")[-1] if qt else ""
                return "%s::%s" % (enum_short, name) if enum_short \
                    else name
            return name
        if kind == "MemberExpr":
            base = self.render(inner[0]) if inner else ""
            sep = "->" if node.get("isArrow") else "."
            if base in ("", "this"):
                return node.get("name", "")
            return "%s%s%s" % (base, sep, node.get("name", ""))
        if kind == "CXXThisExpr":
            return "this"
        if kind == "ArraySubscriptExpr":
            return "%s[%s]" % (self.render(inner[0]),
                               self.render(inner[1])
                               if len(inner) > 1 else "")
        if kind in ("CallExpr", "CXXMemberCallExpr",
                    "CXXOperatorCallExpr"):
            callee = self.render(inner[0]) if inner else ""
            args = ",".join(self.render(a) for a in inner[1:])
            return "%s(%s)" % (callee, args)
        if kind in ("IntegerLiteral", "FloatingLiteral"):
            return node.get("value", "")
        if kind == "CXXBoolLiteralExpr":
            return "true" if node.get("value") else "false"
        if kind == "StringLiteral":
            return node.get("value", '""')
        if kind == "UnaryOperator":
            op = node.get("opcode", "")
            sub = self.render(inner[0]) if inner else ""
            return "%s%s" % (op if op not in ("Deref", "*") else "*",
                             sub)
        if kind in ("BinaryOperator", "CompoundAssignOperator"):
            return "%s %s %s" % (
                self.render(inner[0]) if inner else "",
                node.get("opcode", ""),
                self.render(inner[1]) if len(inner) > 1 else "")
        if kind in ("CXXStaticCastExpr", "CStyleCastExpr",
                    "CXXFunctionalCastExpr"):
            qt = node.get("type", {}).get("qualType", "")
            return "static_cast<%s>(%s)" % (
                qt, self.render(inner[0]) if inner else "")
        if inner:
            return self.render(inner[0])
        return ""

    # --- declaration traversal ---------------------------------------------
    def walk(self, node):
        self.advance_loc(node)
        kind = node.get("kind", "")
        if kind == "NamespaceDecl":
            name = node.get("name", "")
            self.ns.append(name) if name else None
            for ch in node.get("inner", []):
                self.walk(ch)
            if name:
                self.ns.pop()
            return
        if kind == "EnumDecl" and self.in_main_file() and \
                node.get("name"):
            members = [ch.get("name") for ch in node.get("inner", [])
                       if ch.get("kind") == "EnumConstantDecl"]
            self.ir.enums.append(EnumInfo(
                name="::".join(self.ns + [node["name"]]),
                members=members, file=self.rel, line=self.cur_line,
                scoped=bool(node.get("scopedEnumTag"))))
            return
        if kind == "CXXRecordDecl":
            if not node.get("completeDefinition") or \
                    not node.get("name"):
                return
            qual = "::".join(
                self.ns + [c.split("::")[-1]
                           for c in self.cls_stack] + [node["name"]])
            if node.get("id"):
                self.decl_ctx[node["id"]] = qual
            if not self.in_main_file():
                # Still record context ids, but no IR.
                return
            ci = ClassInfo(name=qual, file=self.rel,
                           line=self.cur_line,
                           bases=[b.get("type", {}).get("qualType", "")
                                  for b in node.get("bases", [])])
            self.ir.classes.append(ci)
            self.cls_stack.append(qual)
            for ch in node.get("inner", []):
                self.walk_member(ch, ci)
            self.cls_stack.pop()
            return
        if kind == "TypeAliasDecl" and self.in_main_file():
            self.ir.aliases.append(Alias(
                name=node.get("name", ""),
                target=node.get("type", {}).get("qualType", ""),
                file=self.rel, line=self.cur_line))
            return
        if kind in ("FunctionDecl", "CXXMethodDecl",
                    "CXXConstructorDecl"):
            self.handle_function(node, cls=None)
            return
        if kind == "VarDecl" and self.in_main_file() and \
                not self.cls_stack:
            self.ir.file_vars.append(VarDecl(
                name=node.get("name", ""),
                type_spelling=node.get("type", {}).get("qualType", ""),
                file=self.rel, line=self.cur_line))
            return
        for ch in node.get("inner", []):
            if isinstance(ch, dict):
                self.walk(ch)

    def walk_member(self, node, ci):
        self.advance_loc(node)
        kind = node.get("kind", "")
        if kind == "FieldDecl":
            qt = node.get("type", {}).get("qualType", "")
            ci.fields.append(FieldInfo(
                name=node.get("name", ""), type_spelling=qt,
                cls=ci.name, file=self.rel, line=self.cur_line,
                is_const=qt.startswith("const "),
                is_mutable=bool(node.get("mutable"))))
            return
        if kind == "VarDecl":   # static data member
            qt = node.get("type", {}).get("qualType", "")
            ci.fields.append(FieldInfo(
                name=node.get("name", ""), type_spelling=qt,
                cls=ci.name, file=self.rel, line=self.cur_line,
                is_static=True, is_const=qt.startswith("const ")))
            return
        if kind in ("CXXMethodDecl", "CXXConstructorDecl",
                    "FunctionDecl"):
            self.handle_function(node, cls=ci)
            return
        self.walk(node)

    def handle_function(self, node, cls):
        self.advance_loc(node)
        name = node.get("name", "")
        if not name or name.startswith("operator"):
            return
        cls_name = cls.name if cls else \
            self.decl_ctx.get(node.get("parentDeclContextId", ""), "")
        qual = (cls_name + "::" + name) if cls_name else \
            "::".join(self.ns + [name])
        if cls:
            cls.methods.append(name)
        body = None
        params = []
        line = self.cur_line
        for ch in node.get("inner", []):
            self.advance_loc(ch)
            if ch.get("kind") == "ParmVarDecl" and ch.get("name"):
                params.append(VarDecl(
                    name=ch["name"],
                    type_spelling=ch.get("type", {}).get("qualType", ""),
                    file=self.rel, line=self.cur_line, func=qual))
            elif ch.get("kind") == "CompoundStmt":
                body = ch
        if body is None or not self.in_main_file():
            return
        fn = FunctionInfo(
            name=qual, cls=cls_name, file=self.rel, line=line,
            is_ctor=(node.get("kind") == "CXXConstructorDecl"),
            return_type=node.get("type", {}).get("qualType", "")
            .split("(")[0].strip(),
            params=params)
        self.ir.functions.append(fn)
        self.walk_stmt(body, fn)

    # --- statement traversal -----------------------------------------------
    def walk_stmt(self, node, fn):
        if not isinstance(node, dict):
            return
        self.advance_loc(node)
        kind = node.get("kind", "")
        line = self.cur_line
        inner = [n for n in node.get("inner", []) if n]

        if kind in ("CoawaitExpr", "CoreturnStmt", "CoyieldExpr",
                    "CoroutineBodyStmt"):
            fn.is_coro = True
        if kind == "LambdaExpr":
            child = FunctionInfo(
                name="%s::<lambda:%d>" % (fn.name, line),
                cls=fn.cls, file=self.rel, line=line,
                is_lambda=True, parent_func=fn.name)
            self.ir.functions.append(child)
            for ch in inner:
                if ch.get("kind") == "CompoundStmt":
                    self.walk_stmt(ch, child)
                else:
                    self.walk_stmt(ch, fn)
            return
        if kind in ("BinaryOperator", "CompoundAssignOperator"):
            op = node.get("opcode", "")
            if op in ASSIGN_OPS and inner:
                self.note_write(inner[0], ASSIGN_OPS[op], fn, line)
            elif op in CMP_OPS and len(inner) >= 2:
                fn.comparisons.append(Comparison(
                    lhs=self.render(inner[0]),
                    rhs=self.render(inner[1]),
                    file=self.rel, line=line, func=fn.name))
        if kind == "UnaryOperator" and \
                node.get("opcode") in ("++", "--") and inner:
            self.note_write(inner[0], "modify", fn, line)
        if kind in ("CallExpr", "CXXMemberCallExpr"):
            callee = self.render(inner[0]) if inner else ""
            fn.calls.append(CallSite(
                callee=callee,
                args=[self.render(a) for a in inner[1:]],
                file=self.rel, line=line, func=fn.name))
            short = callee.replace("->", ".").split(".")[-1]
            if short in MUTATORS and "." in callee.replace("->", "."):
                recv = callee.replace("->", ".").rsplit(".", 1)[0]
                fn.writes.append(WriteSite(
                    field=recv.split(".")[-1].split("[")[0],
                    cls="", expr=recv, kind="call", via_method=short,
                    file=self.rel, line=line, func=fn.name))
        if kind == "SwitchStmt":
            self.handle_switch(node, fn, line)
            return
        if kind == "CXXForRangeStmt":
            self.handle_ranged_for(node, fn, line)
            return
        if kind == "VarDecl" and node.get("name"):
            fn.locals.append(VarDecl(
                name=node["name"],
                type_spelling=node.get("type", {}).get("qualType", ""),
                file=self.rel, line=line, func=fn.name))
        for ch in inner:
            self.walk_stmt(ch, fn)

    def note_write(self, lhs, kind, fn, line):
        expr = self.render(lhs)
        if not expr:
            return
        node = lhs
        while node.get("kind") in ("ImplicitCastExpr", "ParenExpr") \
                and node.get("inner"):
            node = node["inner"][0]
        idx = ""
        if node.get("kind") == "ArraySubscriptExpr" and \
                len(node.get("inner", [])) > 1:
            idx = self.render(node["inner"][1])
            node = node["inner"][0]
            while node.get("kind") in ("ImplicitCastExpr", "ParenExpr") \
                    and node.get("inner"):
                node = node["inner"][0]
        field = ""
        cls = ""
        if node.get("kind") == "MemberExpr":
            field = node.get("name", "")
            base = node.get("inner", [{}])[0]
            while base.get("kind") in ("ImplicitCastExpr", "ParenExpr") \
                    and base.get("inner"):
                base = base["inner"][0]
            if base.get("kind") == "CXXThisExpr":
                cls = fn.cls
        elif node.get("kind") == "DeclRefExpr":
            ref = node.get("referencedDecl", {})
            if ref.get("kind") == "FieldDecl":
                field = ref.get("name", "")
                cls = fn.cls
            else:
                return          # a local/param/global, not a field
        else:
            return
        if field:
            fn.writes.append(WriteSite(
                field=field, cls=cls, expr=expr, kind=kind,
                index_expr=idx, file=self.rel, line=line,
                func=fn.name))

    def handle_switch(self, node, fn, line):
        inner = [n for n in node.get("inner", []) if n]
        cond = inner[0] if inner else None
        qt_node = cond
        while qt_node and qt_node.get("kind") == "ImplicitCastExpr" \
                and qt_node.get("inner"):
            qt_node = qt_node["inner"][0]
        sw = SwitchInfo(
            cond=self.render(cond),
            cond_enum=(qt_node or {}).get("type", {})
            .get("qualType", ""),
            file=self.rel, line=line, func=fn.name)
        def visit(n):
            if not isinstance(n, dict):
                return
            k = n.get("kind", "")
            if k == "CaseStmt":
                lbl = n.get("inner", [None])[0]
                sw.cases.append(self.render(lbl))
            if k == "DefaultStmt":
                sw.has_default = True
            if k == "SwitchStmt" and n is not node:
                return          # nested switch handled on its own
            for ch in n.get("inner", []):
                visit(ch)
        for ch in inner[1:]:
            visit(ch)
            self.walk_stmt(ch, fn)
        fn.switches.append(sw)

    def handle_ranged_for(self, node, fn, line):
        inner = [n for n in node.get("inner", []) if n]
        range_expr = ""
        range_type = ""
        for ch in inner:
            if ch.get("kind") == "DeclStmt":
                for v in ch.get("inner", []):
                    if v.get("kind") != "VarDecl":
                        continue
                    nm = v.get("name", "")
                    if nm == "__range1":
                        init = [x for x in v.get("inner", [])
                                if isinstance(x, dict)]
                        range_expr = self.render(init[0]) if init else ""
                        range_type = v.get("type", {}) \
                            .get("qualType", "")
                    elif nm and not nm.startswith("__"):
                        fn.locals.append(VarDecl(
                            name=nm,
                            type_spelling=v.get("type", {})
                            .get("qualType", ""),
                            file=self.rel, line=line, func=fn.name))
        fn.ranged_fors.append(RangedFor(
            range_expr=range_expr, range_type=range_type,
            file=self.rel, line=line, func=fn.name))
        for ch in inner:
            if ch.get("kind") == "CompoundStmt":
                self.walk_stmt(ch, fn)


def comments_for(full, rel):
    """Comment map via the fallback lexer (the AST dump drops them)."""
    from .cpp_lexer import lex
    with open(full, "r", encoding="utf-8", errors="replace") as fh:
        _toks, comments = lex(fh.read())
    return comments


def parse_ast_json(ast, rel, full):
    walker = Walker(rel, full)
    walker.walk(ast)
    walker.ir.comments = comments_for(full, rel)
    return walker.ir


def parse_file(full, rel, repo, cache_dir=None):
    """FileIR for @p full via clang, or None when the file has no
    compile-db entry (headers: the driver falls back)."""
    ast = cached_dump(full, rel, repo, cache_dir)
    if ast is None:
        return None
    return parse_ast_json(ast, rel, full)
