"""HADES-specific facts the rules are parameterized on.

Everything here is a *named system invariant* with a home in DESIGN.md:
the lane-confinement discipline of section 11, the PR 4 epoch-fencing
rules of section 9, and the hades-sweep-v1 telemetry contract of
section 8. Keeping them in one module makes the encoded model of the
system reviewable at a glance.
"""

import re

# --- A1 lane-safety ---------------------------------------------------------

# Modules whose mutable state the lane-escape pass inventories: the
# protocol engines, the interconnect, and recovery/replication. (sim/
# is the kernel itself; core/ is the runner, which executes outside
# event context.)
A1_TARGET_DIRS = ("src/protocol", "src/net", "src/recovery",
                  "src/replica")

# Subsystems the runner's threaded certification statically excludes
# (DESIGN.md section 11: faults, recovery, replication, and audit all
# force the deterministic sharded executor), so their state is never
# touched by concurrent lanes.
A1_UNCERTIFIED_DIRS = ("src/recovery", "src/replica", "src/fault",
                       "src/audit", "src/fuzz")

# Functions that abort the threaded attempt before touching shared
# state (the hard gates). Anything downstream of a call to one of
# these never executes in a threaded run.
A1_GATE_FUNCS = {"refuseIfThreaded", "ensureSerialForLockMode"}

# Per-node accessors: each returns a reference into per-node sharded
# state selected by the *executing* node, so writes through them are
# lane-local by construction (see TxnEngine::st, System::rng,
# System::routerFor).
A1_NODE_ACCESSORS = {"st", "rng", "routerFor", "routerForNode"}

# Subscript spellings that select per-node state by the executing or
# addressed node (per-node arrays like txPort_[src], statsByNode_[n]).
A1_NODE_INDEX_RE = re.compile(
    r"\b(node|src|dst|home|n|ctx\.node|currentNode|laneOf|lane|"
    r"self|peer|coord)\b")

# Writer-function name patterns that run during experiment setup (no
# events in flight), not in per-node event-handler context.
A1_SETUP_FUNC_RE = re.compile(
    r"^(configure\w*|set[A-Z]\w*|reset\w*|init\w*|shard|attach\w*|"
    r"enable\w*|bind\w*|register\w*|reserve)$")

# The runner and the CLI execute on the main thread outside
# kernel.run() -- their own statements are prologue/epilogue, never
# event context. driveContext is the exception (a coroutine that hops
# onto a node lane), and so is any lambda they schedule.
A1_RUNNER_FILES = ("src/core/", "examples/")
A1_RUNNER_EXCEPT = {"driveContext"}

# --- A2 verb totality -------------------------------------------------------

# Enums whose switches must enumerate every member explicitly (a
# `default:` does not excuse a missing case -- adding a verb must
# break loudly, which is the point of the rule).
A2_TOTAL_ENUMS = {"MsgType", "SquashReason", "Overhead", "EngineKind",
                  "AppKind", "StoreKind"}

# Enumerators acting as count sentinels, never real cases.
A2_SENTINEL_RE = re.compile(r"^Num[A-Z]\w*$")

# One-way posts of these verbs are protocol-level replies/confirms:
# the *sender of the original message* owns the retry (commit-fanout
# Ack-timeout resends, reliablePost confirm-Acks), so a bare post is
# the correct idiom.
A2_REPLY_VERBS = {"Ack"}

# Functions that ARE the registered reliability path; bare posts
# inside them are the retry mechanism itself. armCommitResend is the
# commit-phase timeout: it re-posts IntendToCommit to every peer whose
# Ack is missing until the resend budget squashes the transaction.
A2_RELIABILITY_WRAPPERS = {"reliablePost", "reliableAttempt",
                           "armCommitResend"}

# One-sided RDMA verbs ride an RC queue pair: the NIC itself
# retransmits until completion (same delivery guarantee roundTrip
# models), so a post of these needs no protocol-level retry.
A2_NIC_VERBS = {"RdmaRead", "RdmaWrite", "RdmaCas"}

# --- A3 epoch fencing -------------------------------------------------------

# View-changed state (PR 4): mutating any of these outside the view
# change itself requires comparing a configuration epoch first, or an
# explicit epoch-fence-ok justification naming the covering fence.
A3_VIEW_STATE_FIELDS = {"pendingApplies", "decisionLog"}

# The view-change executor and the recovery manager own epoch
# advancement; their mutations happen at the single atomic view-change
# event (DESIGN.md section 9) and are fenced by construction.
A3_OWNER_CLASS_RE = re.compile(r"\bRecoveryManager\b")

A3_EPOCH_RE = re.compile(r"epoch", re.IGNORECASE)

# --- A4 telemetry conservation ---------------------------------------------

# The JSON emitter every RunResult/EngineStats field must reach.
A4_JSON_FUNC = "runResultJson"
A4_JSON_FILE = "src/core/result_json.cc"
# The CLI summary (every counter field must be printable there).
A4_CLI_FILE = "examples/hades_sim_cli.cpp"

A4_RESULT_CLASS = "RunResult"
A4_STATS_CLASS = "EngineStats"

# Scalar counter types that must reach both sinks. Aggregates
# (Histogram, Accumulator, arrays) surface through derived fields and
# are checked for JSON presence only.
A4_COUNTER_TYPE_RE = re.compile(
    r"(std::uint64_t|std::uint32_t|std::int64_t|bool|Tick)\s*$")

# EngineStats members that surface through derived RunResult fields
# instead of verbatim serialization.
A4_DERIVED_STATS = {
    "execPhase": "exec_us",
    "validationPhase": "validation_us",
    "commitPhase": "commit_us",
    "overheadTicks": "overhead_share",
}

# --- R3X / R4X --------------------------------------------------------------

R3_UNORDERED_RE = re.compile(
    r"\bstd::unordered_(map|set|multimap|multiset)\b")

R4_ORDERED_TMPL_RE = re.compile(
    r"\bstd::(map|set|multimap|multiset|priority_queue)\s*<")

# --- suppression ------------------------------------------------------------

SUPPRESS_RE = re.compile(
    r"hades-analyze:\s*([a-z0-9-]+)-ok(?:\s*\(([^)]*)\))?")
DET_LINT_OK_RE = re.compile(r"det-lint:\s*ordered-ok")

ALL_RULES = (
    "lane-escape", "verb-totality", "verb-reliability", "epoch-fence",
    "telemetry", "unordered-iter", "pointer-order", "suppression",
)
