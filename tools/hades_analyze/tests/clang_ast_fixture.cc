// Source mirrored by clang_ast_fixture.json: a hand-written
// `clang++ -ast-dump=json` document that exercises the walker's
// delta-encoded locations, parentDeclContextId method attribution,
// switch condition typing, the __range1 protocol, and coroutine
// detection -- without needing clang++ in the container.
namespace fx
{

enum class Kind
{
    A,
    B,
    NumKinds,
};

struct Counter
{
    unsigned long v = 0;
    unsigned long items[4] = {};
    void bump();
    int pick(Kind k);
    unsigned long spin();
    void co();
};

void
Counter::bump()
{
    v += 1;
}

int
Counter::pick(Kind k)
{
    switch (k) {
    case Kind::A:
        return 1;
    default:
        return 0;
    }
}

unsigned long
Counter::spin()
{
    unsigned long sum = 0;
    for (auto &x : items) {
        sum += x;
    }
    return sum;
}

void
Counter::co()
{
    // body modeled as `co_await ...;` in the dump
}

} // namespace fx
