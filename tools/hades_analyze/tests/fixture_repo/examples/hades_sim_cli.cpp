#include "../src/core/runner.hh"

#include <cstdio>

int
main()
{
    fx::core::RunResult res;
    std::printf("good      %lu\n", (unsigned long)res.good);
    std::printf("committed %lu\n",
                (unsigned long)res.stats.committed);
    return 0;
}
