#include "runner.hh"

namespace fx::core
{

static std::uint64_t
emit(std::uint64_t v)
{
    return v;
}

std::uint64_t
runResultJson(const RunResult &res)
{
    std::uint64_t out = 0;
    out += emit(res.good);
    out += emit(res.jsonOnly);
    out += emit(res.stats.committed);
    return out;
}

} // namespace fx::core
