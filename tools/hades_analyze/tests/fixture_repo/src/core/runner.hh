// Telemetry-conservation (A4) fixture: counters that do and do not
// reach the JSON emitter and the CLI summary.
#pragma once

#include <cstdint>

namespace fx::core
{

struct EngineStats
{
    std::uint64_t committed = 0;   // reaches both sinks: clean
    std::uint64_t droppedStat = 0; // EXPECT: telemetry -- neither sink
};

struct RunResult
{
    EngineStats stats;
    std::uint64_t good = 0;     // reaches both sinks: clean
    std::uint64_t jsonOnly = 0; // EXPECT: telemetry -- JSON but no CLI
    std::uint64_t lost = 0;     // EXPECT: telemetry -- neither sink
    std::uint64_t waived = 0; // hades-analyze: telemetry-ok (fixture: intentionally unreported)
};

std::uint64_t runResultJson(const RunResult &res);

} // namespace fx::core
