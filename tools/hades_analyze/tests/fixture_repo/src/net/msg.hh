// Verb-totality (A2) fixture enum. NumTypes is a count sentinel and
// must never be required as a case.
#pragma once

namespace fx::net
{

enum class MsgType
{
    Prepare,
    Ack,
    RdmaWrite,
    NumTypes,
};

} // namespace fx::net
