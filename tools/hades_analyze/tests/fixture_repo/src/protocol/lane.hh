// Lane-escape (A1) fixture: one class exercising every classification
// the pass knows, plus a fully class-annotated one.
#pragma once

#include <cstdint>
#include <map>

namespace fx::protocol
{

struct Stats
{
    std::uint64_t hits = 0;
};

class Engine
{
  public:
    void escapeWrite();             // expect: lane-escape finding
    void gatedWrite();              // gate-covered: clean
    void shardedWrite(unsigned node); // per-node subscript: clean
    void accessorWrite();           // per-node accessor: clean
    void annotatedWrite();          // field-level marker: clean
    void markedWrite();             // site-level marker: clean

  private:
    Stats &st();
    void refuseIfThreaded() const;

    std::uint64_t total_ = 0;
    std::uint64_t gated_ = 0;
    std::uint64_t annotated_ = 0; // hades-analyze: lane-escape-ok (fixture: field-level annotation)
    std::uint64_t sitePass_ = 0;
    std::map<unsigned, std::uint64_t> byNode_;
};

// hades-analyze: lane-escape-ok (fixture: class-level annotation)
class AnnotatedEngine
{
  public:
    void anyWrite();                // class-level marker: clean

  private:
    std::uint64_t x_ = 0;
};

} // namespace fx::protocol
