// R3X/R4X fixtures: the unordered container and the pointer-keyed
// maps are declared HERE while the loops live in iter.cc -- the
// cross-file resolution det-lint's regex could not do.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

namespace fx::protocol
{

struct Widget;

struct WidgetLess
{
    bool operator()(const Widget *a, const Widget *b) const;
};

struct Table
{
    std::unordered_map<std::uint64_t, std::uint64_t> byKey;
    std::map<std::uint64_t, std::uint64_t> ordered;
};

class Scan
{
  public:
    std::uint64_t run() const;          // expect: unordered-iter
    std::uint64_t runOrdered() const;   // ordered map: clean
    std::uint64_t runWaived() const;    // hades-analyze marker: clean
    std::uint64_t runLegacy() const;    // det-lint marker: clean

  private:
    Table tbl_;
    std::map<Widget *, int> byPtr;                // EXPECT: pointer-order
    std::map<Widget *, int, WidgetLess> byPtrCmp; // comparator: clean
    std::set<const Widget *> ptrs; // hades-analyze: pointer-order-ok (fixture: suppressed pointer key)
};

} // namespace fx::protocol
