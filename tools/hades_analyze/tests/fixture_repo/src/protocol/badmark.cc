// Suppression-hygiene fixtures: a marker with no justification and a
// marker naming a rule that does not exist each become findings.
namespace fx::protocol
{

// hades-analyze: lane-escape-ok -- EXPECT: suppression
int
unjustified()
{
    return 1;
}

// hades-analyze: nosuch-ok (this rule does not exist) EXPECT: suppression
int
unknownRule()
{
    return 2;
}

} // namespace fx::protocol
