#include "epoch.hh"

namespace fx::protocol
{

void
Applier::unfenced(std::uint64_t k)
{
    refuseIfThreaded();
    j_.pendingApplies[k] = 1; // EXPECT: epoch-fence
}

void
Applier::fenced(std::uint64_t k, std::uint64_t epoch)
{
    refuseIfThreaded();
    if (epoch_ == epoch)
        j_.pendingApplies[k] = 1;
}

void
Applier::waived(std::uint64_t k)
{
    refuseIfThreaded();
    // hades-analyze: epoch-fence-ok (fixture: fenced by construction)
    j_.decisionLog[k] = 1;
}

void
RecoveryManager::apply(std::uint64_t k)
{
    refuseIfThreaded();
    j_.pendingApplies.erase(k);
}

} // namespace fx::protocol
