#include "iter.hh"

namespace fx::protocol
{

std::uint64_t
Scan::run() const
{
    std::uint64_t sum = 0;
    for (const auto &kv : tbl_.byKey) // EXPECT: unordered-iter
        sum += kv.second;
    return sum;
}

std::uint64_t
Scan::runOrdered() const
{
    std::uint64_t sum = 0;
    for (const auto &kv : tbl_.ordered)
        sum += kv.second;
    return sum;
}

std::uint64_t
Scan::runWaived() const
{
    std::uint64_t sum = 0;
    // hades-analyze: unordered-iter-ok (fixture: order-insensitive sum)
    for (const auto &kv : tbl_.byKey)
        sum += kv.second;
    return sum;
}

std::uint64_t
Scan::runLegacy() const
{
    std::uint64_t sum = 0;
    // det-lint: ordered-ok
    for (const auto &kv : tbl_.byKey)
        sum += kv.second;
    return sum;
}

} // namespace fx::protocol
