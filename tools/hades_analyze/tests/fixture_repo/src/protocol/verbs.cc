// A2 fixtures: switch totality over MsgType and post reliability.
#include "../net/msg.hh"

namespace fx::protocol
{

using fx::net::MsgType;

const char *
missingCase(MsgType t)
{
    switch (t) { // EXPECT: verb-totality (misses Ack, RdmaWrite)
    case MsgType::Prepare:
        return "prepare";
    default:
        return "?";
    }
}

const char *
totalSwitch(MsgType t)
{
    switch (t) {
    case MsgType::Prepare:
        return "prepare";
    case MsgType::Ack:
        return "ack";
    case MsgType::RdmaWrite:
        return "write";
    case MsgType::NumTypes:
        break;
    }
    return "?";
}

const char *
waivedSwitch(MsgType t)
{
    // hades-analyze: verb-totality-ok (fixture: intentionally partial)
    switch (t) {
    case MsgType::Ack:
        return "ack";
    default:
        return "?";
    }
}

class Net
{
  public:
    void post(MsgType t, int bytes);
    void roundTrip(MsgType t);
};

class Poster
{
  public:
    void bare();         // expect: verb-reliability finding
    void reply();        // Ack is a protocol reply: clean
    void nicVerb();      // RdmaWrite rides an RC QP: clean
    void reliable();     // roundTrip: clean
    void reliablePost(); // IS the wrapper: clean
    void waived();       // justified marker: clean

  private:
    Net net_;
};

void
Poster::bare()
{
    net_.post(MsgType::Prepare, 16); // EXPECT: verb-reliability
}

void
Poster::reply()
{
    net_.post(MsgType::Ack, 16);
}

void
Poster::nicVerb()
{
    net_.post(MsgType::RdmaWrite, 64);
}

void
Poster::reliable()
{
    net_.roundTrip(MsgType::Prepare);
}

void
Poster::reliablePost()
{
    net_.post(MsgType::Prepare, 16);
}

void
Poster::waived()
{
    // hades-analyze: verb-reliability-ok (fixture: covered by a test-only resend)
    net_.post(MsgType::Prepare, 16);
}

} // namespace fx::protocol
