// Epoch-fence (A3) fixture: view-changed journals and their writers.
// Every method gates with refuseIfThreaded() so the A1 pass stays
// quiet and the per-rule assertions do not overlap.
#pragma once

#include <cstdint>
#include <map>

namespace fx::protocol
{

struct Journal
{
    std::map<std::uint64_t, std::uint64_t> pendingApplies;
    std::map<std::uint64_t, std::uint64_t> decisionLog;
};

class Applier
{
  public:
    void unfenced(std::uint64_t k);  // expect: epoch-fence finding
    void fenced(std::uint64_t k, std::uint64_t epoch); // guarded: clean
    void waived(std::uint64_t k);    // justified marker: clean

  private:
    void refuseIfThreaded() const;
    Journal j_;
    std::uint64_t epoch_ = 0;
};

class RecoveryManager
{
  public:
    void apply(std::uint64_t k);     // owner class: exempt

  private:
    void refuseIfThreaded() const;
    Journal j_;
};

} // namespace fx::protocol
