#include "lane.hh"

namespace fx::protocol
{

void
Engine::escapeWrite()
{
    total_ += 1; // EXPECT: lane-escape
}

void
Engine::gatedWrite()
{
    refuseIfThreaded();
    gated_ += 1;
}

void
Engine::shardedWrite(unsigned node)
{
    byNode_[node] += 1;
}

void
Engine::accessorWrite()
{
    st().hits += 1;
}

void
Engine::annotatedWrite()
{
    annotated_ += 1;
}

void
Engine::markedWrite()
{
    // hades-analyze: lane-escape-ok (fixture: site-level suppression)
    sitePass_ += 1;
}

void
AnnotatedEngine::anyWrite()
{
    x_ += 1;
}

} // namespace fx::protocol
