#!/usr/bin/env python3
"""hades-analyze fixture suite (ctest label: static-analysis).

Two halves:

1. Rule fixtures. Every rule runs against fixture_repo/, a miniature
   HADES tree where each rule has a violating, a clean, and a
   suppressed case. The EXPECTED findings are declared in the fixture
   sources themselves with `EXPECT: <rule>` comments on the exact
   line, so the assertion is: the set of (file, line) findings equals
   the set of EXPECT markers for that rule -- nothing missing (the
   violating case fires), nothing extra (clean and suppressed cases
   stay quiet).

2. clang frontend walker. clang_ast_fixture.json is a hand-written
   `-ast-dump=json` document (the container has no clang++); parsing
   it must reproduce the known IR: delta-encoded locations,
   parentDeclContextId method attribution, this-relative writes,
   switch condition typing, the __range1 ranged-for protocol, and
   CoawaitExpr coroutine detection.
"""

import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.abspath(os.path.join(HERE, "..", "..", ".."))
FIXTURE_REPO = os.path.join(HERE, "fixture_repo")
EXPECT_RE = re.compile(r"EXPECT:\s*([a-z-]+)")

sys.path.insert(0, REPO)

from tools.hades_analyze import parse_clang  # noqa: E402
from tools.hades_analyze.config import ALL_RULES  # noqa: E402

failures = []


def check(what, cond, detail=""):
    if cond:
        print("  ok: %s" % what)
    else:
        failures.append(what)
        print("FAIL: %s%s" % (what, ("\n      " + detail) if detail else ""))


def expected_markers():
    """rule -> set((relpath, line)) scraped from the fixture sources."""
    exp = {r: set() for r in ALL_RULES}
    for dirpath, _dirs, files in os.walk(FIXTURE_REPO):
        for fname in sorted(files):
            full = os.path.join(dirpath, fname)
            rel = os.path.relpath(full, FIXTURE_REPO).replace(os.sep, "/")
            with open(full, "r", encoding="utf-8") as fh:
                for i, line in enumerate(fh, 1):
                    m = EXPECT_RE.search(line)
                    if m and m.group(1) in exp:
                        exp[m.group(1)].add((rel, i))
    return exp


def run_rule(rule):
    """Findings from one rule over the fixture repo, via the CLI."""
    out = os.path.join(tempfile.mkdtemp(prefix="hades-analyze-"),
                       "findings.json")
    proc = subprocess.run(
        [sys.executable, "-m", "tools.hades_analyze",
         "--repo", FIXTURE_REPO, "--frontend", "fallback",
         "--rules", rule, "--quiet", "--json", out],
        cwd=REPO, capture_output=True, text=True)
    with open(out, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    return proc.returncode, report["findings"]


def test_rule_fixtures():
    exp = expected_markers()
    # Sanity: the fixture tree actually declares work for every rule.
    for rule in ALL_RULES:
        check("fixtures declare at least one %s case" % rule,
              bool(exp[rule]))
    for rule in ALL_RULES:
        rc, findings = run_rule(rule)
        got = {(f["file"], f["line"]) for f in findings}
        check("%s: exact findings" % rule, got == exp[rule],
              "expected %s, got %s" % (sorted(exp[rule]), sorted(got)))
        check("%s: exit code signals findings" % rule,
              rc == (1 if exp[rule] else 0), "rc=%d" % rc)
        for f in findings:
            check("%s: finding carries its rule name" % rule,
                  f["rule"] == rule, json.dumps(f))
    # Message-content spot checks (the part line numbers cannot prove).
    _, totality = run_rule("verb-totality")
    check("verb-totality names every missing enumerator",
          any("Ack" in f["message"] and "RdmaWrite" in f["message"]
              for f in totality))
    check("verb-totality flags the hiding default:",
          any("default:" in f["detail"] for f in totality))
    _, unordered = run_rule("unordered-iter")
    check("unordered-iter resolved the cross-file field type",
          any("unordered_map" in f["detail"] for f in unordered))
    _, lane = run_rule("lane-escape")
    check("lane-escape explains the escape",
          any("not gate-covered" in f["detail"] for f in lane))


def test_clang_walker():
    src = os.path.join(HERE, "clang_ast_fixture.cc")
    with open(os.path.join(HERE, "clang_ast_fixture.json"),
              "r", encoding="utf-8") as fh:
        ast = json.loads(fh.read().replace("__FIXTURE_FILE__", src))
    ir = parse_clang.parse_ast_json(ast, "clang_ast_fixture.cc", src)

    enums = {e.name: e for e in ir.enums}
    check("clang: enum fx::Kind parsed", "fx::Kind" in enums)
    if "fx::Kind" in enums:
        check("clang: enum members in order",
              enums["fx::Kind"].members == ["A", "B", "NumKinds"])

    classes = {c.name: c for c in ir.classes}
    check("clang: class fx::Counter parsed", "fx::Counter" in classes)
    if "fx::Counter" in classes:
        ci = classes["fx::Counter"]
        fields = {f.name: f for f in ci.fields}
        check("clang: field v typed",
              fields.get("v") is not None
              and fields["v"].type_spelling == "unsigned long")
        check("clang: field decl line via delta-encoded loc",
              fields.get("v") is not None and fields["v"].line == 18)
        check("clang: in-class method names recorded",
              set(ci.methods) >= {"bump", "pick", "spin", "co"})

    fns = {f.name: f for f in ir.functions}
    check("clang: out-of-line method attributed via parentDeclContextId",
          "fx::Counter::bump" in fns)
    bump = fns.get("fx::Counter::bump")
    if bump:
        check("clang: this-relative write owner class",
              len(bump.writes) == 1
              and bump.writes[0].field == "v"
              and bump.writes[0].cls == "fx::Counter"
              and bump.writes[0].kind == "modify")
        check("clang: write line from stmt range delta",
              bump.writes[0].line == 29)
    pick = fns.get("fx::Counter::pick")
    if pick:
        check("clang: switch parsed", len(pick.switches) == 1)
        sw = pick.switches[0]
        check("clang: switch cond enum from qualType",
              sw.cond_enum == "fx::Kind")
        check("clang: case labels rendered Enum::Member",
              sw.cases == ["Kind::A"])
        check("clang: default: detected", sw.has_default)
    spin = fns.get("fx::Counter::spin")
    if spin:
        check("clang: ranged-for parsed", len(spin.ranged_fors) == 1)
        rf = spin.ranged_fors[0]
        check("clang: range expr from __range1 initializer",
              rf.range_expr == "items")
        check("clang: range type from __range1 qualType",
              rf.range_type == "unsigned long (&)[4]")
        check("clang: loop body statements still walked",
              any(v.name == "sum" for v in spin.locals))
    co = fns.get("fx::Counter::co")
    if co:
        check("clang: CoawaitExpr marks the coroutine", co.is_coro)


def main():
    print("== rule fixtures (%s)" % os.path.relpath(FIXTURE_REPO, REPO))
    test_rule_fixtures()
    print("== clang AST walker")
    test_clang_walker()
    if failures:
        print("\n%d check(s) FAILED:" % len(failures))
        for f in failures:
            print("  - %s" % f)
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
