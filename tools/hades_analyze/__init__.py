"""hades-analyze: AST-grounded semantic lint suite for the HADES tree.

The analyzer proves (or inventories) three families of HADES-specific
invariants that regex lints cannot see:

  A1 lane-safety       which mutable engine/network/recovery state is
                       confined to one kernel shard lane -- the static
                       precondition for certifying messaging specs for
                       the threaded executor.
  A2 verb totality     every net::MsgType is handled by every switch
                       over the enum, and every one-way post of a verb
                       has a registered reliability/retry path.
  A3 epoch fencing     handlers that mutate view-changed state compare
                       a configuration epoch first (PR 4's stale-epoch
                       fencing rule).
  A4 telemetry         every counter in RunResult/EngineStats reaches
                       both the hades-sweep-v1 JSON emitter and the CLI
                       summary, so counters cannot silently vanish.

plus AST-accurate reimplementations of det-lint R3/R4 (unordered
iteration, pointer-keyed ordering) without the same-file-declaration
blind spot.

Two interchangeable frontends produce the same semantic IR:

  * parse_clang    -- real `clang++ -Xclang -ast-dump=json` dumps,
                      driven by compile_commands.json, cached by source
                      hash (the CI path);
  * parse_fallback -- a built-in C++ tokenizer/structural parser, used
                      where clang is not installed (dev containers).

Suppression syntax (the justification is mandatory):

    // hades-analyze: <rule>-ok (why this is safe)

on the flagged line or the line directly above it.
"""

__version__ = "1.0"
