"""Semantic IR shared by the clang and fallback frontends.

The IR is deliberately *spelling-oriented*: rules match on qualified
names and expression spellings, not on resolved clang type objects, so
both frontends can populate it faithfully. Every entity carries its
file and line for reporting and suppression lookup.
"""

from dataclasses import dataclass, field


@dataclass
class EnumInfo:
    name: str               # qualified-ish, e.g. 'hades::net::MsgType'
    members: list           # enumerator names in declaration order
    file: str = ""
    line: int = 0
    scoped: bool = True


@dataclass
class FieldInfo:
    name: str               # e.g. 'msgCount_'
    type_spelling: str      # normalized, e.g. 'std::uint64_t'
    cls: str = ""           # owning class qualified name
    file: str = ""
    line: int = 0
    is_static: bool = False
    is_const: bool = False
    is_mutable: bool = False


@dataclass
class VarDecl:
    """A non-member declaration visible to name resolution: local,
    parameter, or file-scope variable."""
    name: str
    type_spelling: str
    init: str = ""          # initializer spelling, when recorded
    file: str = ""
    line: int = 0
    func: str = ""          # enclosing function ('' = file scope)


@dataclass
class WriteSite:
    """A mutation of a class field: assignment, compound assignment,
    increment/decrement, or a mutating-method call (push_back, insert,
    erase, clear, operator[] on a container, ...)."""
    field: str              # field name as spelled
    cls: str                # owning class if known, else ''
    expr: str               # full LHS spelling, e.g. 'statsByNode_[n]'
    kind: str               # 'assign' | 'modify' | 'call'
    index_expr: str = ""    # subscript spelling if the LHS subscripts
    via_method: str = ""    # mutating method name for kind == 'call'
    file: str = ""
    line: int = 0
    func: str = ""          # enclosing function qualified name


@dataclass
class CallSite:
    callee: str             # spelling, e.g. 'sys_.network.post'
    args: list = field(default_factory=list)  # argument spellings
    file: str = ""
    line: int = 0
    func: str = ""


@dataclass
class SwitchInfo:
    cond: str               # condition spelling
    cond_enum: str = ""     # resolved enum qualified name, if known
    cases: list = field(default_factory=list)  # case label spellings
    has_default: bool = False
    file: str = ""
    line: int = 0
    func: str = ""


@dataclass
class RangedFor:
    range_expr: str         # spelling of the range expression
    range_type: str = ""    # resolved type when the frontend knows it
    file: str = ""
    line: int = 0
    func: str = ""


@dataclass
class Comparison:
    """A relational/equality expression; A3 looks for epoch guards."""
    lhs: str
    rhs: str
    file: str = ""
    line: int = 0
    func: str = ""


@dataclass
class FunctionInfo:
    name: str               # qualified, e.g. 'hades::net::Network::post'
    cls: str = ""           # owning class qualified name ('' = free)
    file: str = ""
    line: int = 0
    end_line: int = 0
    is_ctor: bool = False
    is_lambda: bool = False
    is_coro: bool = False   # coroutine: body resumes in event context
    parent_func: str = ""   # enclosing function for lambdas
    return_type: str = ""
    params: list = field(default_factory=list)      # VarDecl
    writes: list = field(default_factory=list)      # WriteSite
    calls: list = field(default_factory=list)       # CallSite
    switches: list = field(default_factory=list)    # SwitchInfo
    ranged_fors: list = field(default_factory=list) # RangedFor
    comparisons: list = field(default_factory=list) # Comparison
    locals: list = field(default_factory=list)      # VarDecl


@dataclass
class ClassInfo:
    name: str               # qualified, e.g. 'hades::net::Network'
    file: str = ""
    line: int = 0
    fields: list = field(default_factory=list)      # FieldInfo
    methods: list = field(default_factory=list)     # method names
    bases: list = field(default_factory=list)


@dataclass
class Alias:
    """'using X = T;' or 'typedef T X;'"""
    name: str
    target: str
    file: str = ""
    line: int = 0


@dataclass
class FileIR:
    path: str               # repo-relative, posix
    enums: list = field(default_factory=list)
    classes: list = field(default_factory=list)
    functions: list = field(default_factory=list)
    aliases: list = field(default_factory=list)
    file_vars: list = field(default_factory=list)   # VarDecl
    comments: dict = field(default_factory=dict)    # line -> text


class Index:
    """Cross-file symbol index the rules query."""

    def __init__(self, files):
        self.files = files  # list[FileIR]
        self.enums = {}     # short and qualified name -> EnumInfo
        self.classes = {}   # short and qualified name -> ClassInfo
        self.fields_by_name = {}  # field name -> [FieldInfo]
        self.aliases = {}   # alias name -> target spelling
        self.functions = [] # all FunctionInfo
        self.func_by_name = {}    # qualified name -> [FunctionInfo]
        self.comments = {}  # (path, line) -> comment text
        for f in files:
            for e in f.enums:
                self.enums[e.name] = e
                self.enums.setdefault(e.name.split("::")[-1], e)
            for c in f.classes:
                self.classes[c.name] = c
                self.classes.setdefault(c.name.split("::")[-1], c)
                for fld in c.fields:
                    self.fields_by_name.setdefault(fld.name, []).append(fld)
            for a in f.aliases:
                self.aliases.setdefault(a.name, a.target)
            for fn in f.functions:
                self.functions.append(fn)
                self.func_by_name.setdefault(fn.name, []).append(fn)
                short = fn.name.split("::")[-1]
                self.func_by_name.setdefault(short, []).append(fn)
            for line, text in f.comments.items():
                self.comments[(f.path, line)] = text

    def comment_at(self, path, line):
        return self.comments.get((path, line), "")

    def resolve_alias(self, spelling, depth=0):
        """Follow 'using' aliases a few levels deep."""
        if depth > 4:
            return spelling
        base = spelling.split("<")[0].strip().split("::")[-1]
        if base in self.aliases:
            return self.resolve_alias(self.aliases[base], depth + 1)
        return spelling


@dataclass
class Finding:
    rule: str               # 'lane-escape', 'verb-totality', ...
    file: str
    line: int
    message: str
    detail: str = ""

    def key(self):
        return (self.rule, self.file, self.line, self.message)
