/**
 * @file
 * Seeded chaos fuzzer for the HADES simulator.
 *
 * Campaign mode generates `--seeds` genomes from `--seed-base`, decodes
 * each into an audited, recovery-enabled fault scenario, and runs it
 * across all three protocol engines. Genomes that draw the
 * threaded-messaging gene additionally replay their cluster shape as a
 * fault-free uniform-messaging run on worker threads and diff it
 * against the serial oracle. Any audit violation, invariant failure,
 * end-of-run replica divergence, or threaded-executor divergence stops
 * the matrix, shrinks the genome to a minimal repro (the gene and the
 * shard count collapse first, then delta debugging over the fault
 * events), and writes a replayable `hades-fuzz-repro-v1` JSON artifact.
 *
 *   hades_fuzz --seeds 64 --smoke --jobs 8 --out repro.json
 *   hades_fuzz --replay repro.json
 *   hades_fuzz --seeds 4 --bug-hook skip-resync --out repro.json
 *
 * Exit codes: 0 clean matrix / clean replay, 1 usage or I/O error,
 * 2 failure found (campaign) or reproduced (replay).
 *
 * Everything is deterministic: the same command line produces the same
 * genomes, the same failures, and the same shrunken repro, at any
 * --jobs value.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/campaign.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --seeds N            genomes in the campaign matrix (default 16)\n"
        "  --seed-base S        first genome seed (default 1)\n"
        "  --jobs J             runMany worker threads (default 1)\n"
        "  --smoke              cap txns/context for CI-speed runs\n"
        "  --events-max K       max fault events per genome (default 12)\n"
        "  --shrink-runs R      shrink budget in genome re-runs (default 64)\n"
        "  --out PATH           write the shrunken repro JSON here\n"
        "  --replay PATH        re-run one repro artifact instead\n"
        "  --bug-hook skip-resync  arm the TEST-ONLY injected defect\n"
        "  --quiet              suppress per-seed progress lines\n",
        argv0);
}

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hades;

    fuzz::CampaignOptions opt;
    std::string replay_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--seeds") {
            opt.genomes = std::uint32_t(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--seed-base") {
            opt.seedBase = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--jobs") {
            opt.jobs = unsigned(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--events-max") {
            opt.maxEvents =
                std::uint32_t(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--shrink-runs") {
            opt.shrinkRuns =
                std::uint32_t(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--out") {
            opt.outPath = next();
        } else if (arg == "--replay") {
            replay_path = next();
        } else if (arg == "--bug-hook") {
            const std::string hook = next();
            if (hook != "skip-resync") {
                std::fprintf(stderr, "unknown --bug-hook \"%s\"\n",
                             hook.c_str());
                return 1;
            }
            opt.bugHook = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else {
            usage(argv[0]);
            return 1;
        }
    }

    if (!replay_path.empty()) {
        std::string text;
        if (!readFile(replay_path, text)) {
            std::fprintf(stderr, "cannot read %s\n", replay_path.c_str());
            return 1;
        }
        fuzz::Genome g;
        std::string err;
        if (!fuzz::parseGenomeJson(text, g, err)) {
            std::fprintf(stderr, "bad repro %s: %s\n",
                         replay_path.c_str(), err.c_str());
            return 1;
        }
        fuzz::FuzzRunOptions run{opt.smoke, opt.jobs};
        fuzz::FuzzVerdict v = fuzz::runGenome(g, run);
        if (v.failed) {
            std::printf("replay seed=%llu events=%zu FAILED (%s: %s)\n",
                        static_cast<unsigned long long>(g.seed),
                        g.events.size(), v.engine.c_str(),
                        v.error.c_str());
            return 2;
        }
        std::printf("replay seed=%llu events=%zu ok\n",
                    static_cast<unsigned long long>(g.seed),
                    g.events.size());
        return 0;
    }

    fuzz::CampaignReport report = fuzz::runCampaign(opt);
    std::printf("fuzz campaign: %u genomes, %u failure(s)\n",
                report.genomesRun, report.failures);
    return report.failures == 0 ? 0 : 2;
}
